package core

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bandana/internal/fp16"
	"bandana/internal/nvm"
)

// testVec builds a dim-length vector of fp16-exact values derived from tag,
// so a lookup after UpdateVector must reproduce it bit-for-bit.
func testVec(dim int, tag uint32) []float32 {
	v := make([]float32, dim)
	for d := range v {
		v[d] = float32(int32(tag%997)) + float32(d%7)*0.5
	}
	return v
}

func TestUpdateRecordRoundTrip(t *testing.T) {
	rec := UpdateRecord{Seq: 42, Table: 3, ID: 12345, Raw: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	buf := EncodeUpdateRecord(nil, rec)
	if len(buf) != EncodedUpdateLen(len(rec.Raw)) {
		t.Fatalf("encoded length %d, want %d", len(buf), EncodedUpdateLen(len(rec.Raw)))
	}
	got, n, err := DecodeUpdateRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if got.Seq != rec.Seq || got.Table != rec.Table || got.ID != rec.ID || !bytes.Equal(got.Raw, rec.Raw) {
		t.Fatalf("decode mismatch: %+v != %+v", got, rec)
	}
	// Concatenated records decode in sequence.
	rec2 := UpdateRecord{Seq: 43, Table: 0, ID: 7, Raw: []byte{9, 9}}
	stream := EncodeUpdateRecord(buf, rec2)
	first, n1, err := DecodeUpdateRecord(stream)
	if err != nil || first.Seq != 42 {
		t.Fatalf("first record: %+v, %v", first, err)
	}
	second, _, err := DecodeUpdateRecord(stream[n1:])
	if err != nil || second.Seq != 43 || !bytes.Equal(second.Raw, rec2.Raw) {
		t.Fatalf("second record: %+v, %v", second, err)
	}
	// A flipped payload bit must fail the record CRC.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-6] ^= 0x40
	if _, _, err := DecodeUpdateRecord(bad); err == nil {
		t.Fatal("corrupt record should fail CRC")
	}
	// A truncated buffer must error, not panic.
	if _, _, err := DecodeUpdateRecord(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated record should error")
	}
}

// TestDeltaUpdateServing pins the overlay read path: after UpdateVector the
// new bytes are served by single lookups, batch lookups and raw batch
// lookups — including for IDs whose block was already cached — and the
// Hits+Misses==Lookups accounting invariant still holds.
func TestDeltaUpdateServing(t *testing.T) {
	tables, _ := buildTestTables(t, 2, 2048, 10)
	s, err := Open(testBackendConfig(t, Config{
		Tables:            tables,
		DRAMBudgetVectors: 256,
		Seed:              1,
		UpdateLog:         UpdateLogOptions{Enabled: true},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ids := []uint32{0, 1, 31, 32, 900, 2047}
	// Warm the cache for half of them so the overlay must win over both the
	// cached copy and the block image.
	for _, id := range ids[:3] {
		if _, err := s.Lookup(0, id); err != nil {
			t.Fatal(err)
		}
	}
	want := make(map[uint32][]float32)
	for _, id := range ids {
		vec := testVec(64, id+5000)
		if err := s.UpdateVector(0, id, vec); err != nil {
			t.Fatal(err)
		}
		want[id] = vec
	}
	for _, id := range ids {
		got, err := s.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(got, want[id]) {
			t.Fatalf("lookup(%d) returned stale bytes after update", id)
		}
	}
	batch, err := s.LookupBatch(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if !vecsEqual(batch[i], want[id]) {
			t.Fatalf("batch lookup(%d) returned stale bytes after update", id)
		}
	}
	if _, err := s.LookupBatchRaw(0, ids); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()[0]
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("accounting broke: hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}
	if st.DeltaHits == 0 {
		t.Fatal("expected some lookups to be served from the delta overlay")
	}
	if st.OverlayEntries != len(ids) {
		t.Fatalf("overlay entries = %d, want %d", st.OverlayEntries, len(ids))
	}
	ls := s.UpdateLogStats()
	if !ls.Enabled || ls.Appends != int64(len(ids)) {
		t.Fatalf("update log stats: %+v, want %d appends", ls, len(ids))
	}
	// The other table's counters and overlay are untouched.
	if other := s.Stats()[1]; other.OverlayEntries != 0 {
		t.Fatalf("table 1 overlay entries = %d, want 0", other.OverlayEntries)
	}
}

// TestDeltaOnOffEquivalence runs the same update+lookup workload with the
// update log on and off; results must be indistinguishable.
func TestDeltaOnOffEquivalence(t *testing.T) {
	tablesA, _ := buildTestTables(t, 1, 1024, 10)
	tablesB, _ := buildTestTables(t, 1, 1024, 10)
	on, err := Open(Config{Tables: tablesA, DRAMBudgetVectors: 128, Seed: 3,
		UpdateLog: UpdateLogOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	off, err := Open(Config{Tables: tablesB, DRAMBudgetVectors: 128, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()

	for i := uint32(0); i < 300; i++ {
		id := (i * 37) % 1024
		vec := testVec(64, i)
		if err := on.UpdateVector(0, id, vec); err != nil {
			t.Fatal(err)
		}
		if err := off.UpdateVector(0, id, vec); err != nil {
			t.Fatal(err)
		}
	}
	for id := uint32(0); id < 1024; id++ {
		a, err := on.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := off.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(a, b) {
			t.Fatalf("id %d diverges between update-log on and off", id)
		}
	}
}

// TestDeltaCompaction folds the overlay into the block image and checks the
// overlay drains, the compaction is durable, and lookups keep serving the
// updated bytes throughout.
func TestDeltaCompaction(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 2048, 10)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Config{
		Backend:           BackendFile,
		DataDir:           dir,
		Tables:            tables,
		DRAMBudgetVectors: 128,
		Seed:              1,
		UpdateLog:         UpdateLogOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint32][]float32)
	for i := uint32(0); i < 500; i++ {
		id := (i * 13) % 2048
		vec := testVec(64, i+1)
		if err := s.UpdateVector(0, id, vec); err != nil {
			t.Fatal(err)
		}
		want[id] = vec
	}
	if err := s.CompactDeltas(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats()[0]; st.OverlayEntries != 0 {
		t.Fatalf("overlay entries after compaction = %d, want 0", st.OverlayEntries)
	}
	ls := s.UpdateLogStats()
	if ls.Compactions == 0 {
		t.Fatalf("compactions = 0 after CompactDeltas; stats %+v", ls)
	}
	for id, vec := range want {
		got, err := s.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(got, vec) {
			t.Fatalf("lookup(%d) lost the update after compaction", id)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted image is durable: a reopen (Tables nil) serves the
	// updated bytes from the block file alone.
	s2, err := Open(Config{Backend: BackendFile, DataDir: dir,
		UpdateLog: UpdateLogOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for id, vec := range want {
		got, err := s2.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(got, vec) {
			t.Fatalf("reopened lookup(%d) lost the compacted update", id)
		}
	}
}

// TestUpdateLogCrashReplay simulates a crash between update and compaction:
// the on-disk log survives and a reopen replays it over the block image.
func TestUpdateLogCrashReplay(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 10)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Config{
		Backend:   BackendFile,
		DataDir:   dir,
		Tables:    tables,
		Seed:      1,
		UpdateLog: UpdateLogOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint32][]float32)
	for i := uint32(0); i < 64; i++ {
		id := i * 16
		vec := testVec(64, i+77)
		if err := s.UpdateVector(0, id, vec); err != nil {
			t.Fatal(err)
		}
		want[id] = vec
	}
	if err := s.Persist(); err != nil { // fsync the log tail
		t.Fatal(err)
	}
	// Crash: drop the store without compaction (Close keeps the log file;
	// only replay removes it).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, UpdateLogFileName)); err != nil {
		t.Fatalf("update log should survive close: %v", err)
	}
	s2, err := Open(Config{Backend: BackendFile, DataDir: dir,
		UpdateLog: UpdateLogOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.UpdateLogStats().RecoveredRecords; got != int64(len(want)) {
		t.Fatalf("recovered %d records, want %d", got, len(want))
	}
	for id, vec := range want {
		got, err := s2.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(got, vec) {
			t.Fatalf("lookup(%d) lost the update across the crash", id)
		}
	}
	// Replay consumed the log; a fresh one took its place.
	raw, err := os.ReadFile(filepath.Join(dir, UpdateLogFileName))
	if err != nil {
		t.Fatal(err)
	}
	if through, recs, err := parseUpdateLog(raw); err != nil || len(recs) != 0 {
		t.Fatalf("fresh log after replay: through=%d recs=%d err=%v", through, len(recs), err)
	}
}

// TestReopenSeqMonotonic pins the seq contract across a restart: a reopened
// store must never report a snapshot seq below one it already handed out.
// The boot stamp alone has one-second granularity, so a same-second reopen
// used to come back at (or below) the pre-restart seq — replicas would
// "re-sync" backward to a seq whose content had since changed, and new
// updates would re-issue already-served seqs. The replayed update log floors
// the reopened seq instead.
func TestReopenSeqMonotonic(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 10)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Config{
		Backend:   BackendFile,
		DataDir:   dir,
		Tables:    tables,
		Seed:      1,
		UpdateLog: UpdateLogOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 32; i++ {
		if err := s.UpdateVector(0, i, testVec(64, i)); err != nil {
			t.Fatal(err)
		}
	}
	lastSeq := s.SnapshotSeq()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen immediately — almost always within the same wall-clock second,
	// the case the boot stamp cannot disambiguate on its own.
	s2, err := Open(Config{Backend: BackendFile, DataDir: dir,
		UpdateLog: UpdateLogOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.SnapshotSeq(); got < lastSeq {
		t.Fatalf("reopened seq %d regressed below pre-restart seq %d", got, lastSeq)
	}
	if err := s2.UpdateVector(0, 5, testVec(64, 999)); err != nil {
		t.Fatal(err)
	}
	if got := s2.SnapshotSeq(); got <= lastSeq {
		t.Fatalf("post-reopen update re-issued seq %d (pre-restart seq was %d)", got, lastSeq)
	}
}

// TestReplicaReopenInheritsSeq pins the replica half of the seq contract: a
// store reopened with an explicit InitialSnapshotSeq (cluster's
// Replica.openSnapshot passing the primary's seq) must come up AT that seq,
// not at a fresh local boot stamp. A boot stamp taken now exceeds every seq
// the primary will ever send, so ApplyReplicatedUpdates' advanceSeq would
// never move, the replica's reported seq would freeze (a chained follower
// would think itself caught up forever), and the fresh update log's
// compacted-through watermark would sit above records appended after it,
// which crash replay would then skip.
func TestReplicaReopenInheritsSeq(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 512, 10)
	primary, err := Open(Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	dim := tables[0].Dim
	for i := uint32(0); i < 8; i++ {
		if err := primary.UpdateVector(0, i, testVec(dim, i)); err != nil {
			t.Fatal(err)
		}
	}
	primarySeq := primary.SnapshotSeq()

	snap, err := primary.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "replica")
	if err := ImportSnapshot(dir, snap, 0); err != nil {
		t.Fatal(err)
	}
	open := func() *Store {
		rep, err := Open(Config{
			Backend: BackendFile, DataDir: dir, ReadOnly: true,
			InitialSnapshotSeq: snap.Seq,
			UpdateLog:          UpdateLogOptions{Enabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rep := open()
	if got := rep.SnapshotSeq(); got != primarySeq {
		t.Fatalf("replica opened at seq %d, want inherited primary seq %d", got, primarySeq)
	}
	recs := []UpdateRecord{
		{Seq: primarySeq + 1, Table: 0, ID: 3, Raw: fp16.EncodeSlice(nil, testVec(dim, 1001))},
		{Seq: primarySeq + 2, Table: 0, ID: 4, Raw: fp16.EncodeSlice(nil, testVec(dim, 1002))},
	}
	if err := rep.ApplyReplicatedUpdates(recs); err != nil {
		t.Fatal(err)
	}
	if got := rep.SnapshotSeq(); got != primarySeq+2 {
		t.Fatalf("replica seq %d after applying updates, want %d", got, primarySeq+2)
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart reusing the same dir (the kill -9 path): the re-logged records
	// floor the seq above the unchanged override, replay restores their
	// bytes, and the stream keeps advancing where it left off.
	rep = open()
	defer rep.Close()
	if got := rep.SnapshotSeq(); got != primarySeq+2 {
		t.Fatalf("reopened replica at seq %d, want replayed seq %d", got, primarySeq+2)
	}
	got, err := rep.Lookup(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !vecsEqual(got, testVec(dim, 1001)) {
		t.Fatal("reopened replica does not serve the replicated bytes")
	}
	if err := rep.ApplyReplicatedUpdates([]UpdateRecord{
		{Seq: primarySeq + 3, Table: 0, ID: 5, Raw: fp16.EncodeSlice(nil, testVec(dim, 1003))},
	}); err != nil {
		t.Fatal(err)
	}
	if got := rep.SnapshotSeq(); got != primarySeq+3 {
		t.Fatalf("replica seq %d after post-restart update, want %d", got, primarySeq+3)
	}
}

// TestDeltaConcurrentUpdatesAndLookups stresses the overlay under parallel
// writers, readers and compactions: per-id last-writer-wins must hold, no
// lookup may error, and the accounting invariant must survive.
func TestDeltaConcurrentUpdatesAndLookups(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 4096, 10)
	s, err := Open(testBackendConfig(t, Config{
		Tables: tables, DRAMBudgetVectors: 256, Seed: 5,
		// A tiny window keeps background compactions firing mid-stream.
		UpdateLog: UpdateLogOptions{Enabled: true, CompactAfter: 64, RetainRecords: 256},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// span < perWriter, so every id is rewritten several times in
	// ascending tag order.
	const writers, perWriter, span = 4, 400, 100
	var wg sync.WaitGroup
	errs := make(chan error, writers*2+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) { // each writer owns a disjoint id range
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint32(w*span + i%span)
				if err := s.UpdateVector(0, id, testVec(64, uint32(w*perWriter+i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) { // readers sweep the same range concurrently
			defer wg.Done()
			ids := make([]uint32, 32)
			for i := 0; i < perWriter/4; i++ {
				for j := range ids {
					ids[j] = uint32(w*span + (i*7+j)%span)
				}
				if _, err := s.LookupBatch(0, ids); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.CompactDeltas(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Last writer wins per id (ids are disjoint across writers, written in
	// ascending tag order).
	for w := 0; w < writers; w++ {
		for _, i := range []int{perWriter - 1, perWriter - 7} {
			id := uint32(w*span + i%span)
			got, err := s.Lookup(0, id)
			if err != nil {
				t.Fatal(err)
			}
			if !vecsEqual(got, testVec(64, uint32(w*perWriter+i))) {
				t.Fatalf("writer %d id %d: lost the last update", w, id)
			}
		}
	}
	st := s.Stats()[0]
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("accounting broke: hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}
}

// TestUpdatesSinceWindow pins the seq->records contract the replication
// endpoint builds on.
func TestUpdatesSinceWindow(t *testing.T) {
	tables, traces := buildTestTables(t, 1, 1024, 10)
	s, err := Open(Config{Tables: tables, Seed: 1,
		UpdateLog: UpdateLogOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := s.SnapshotSeq()
	const n = 20
	for i := uint32(0); i < n; i++ {
		if err := s.UpdateVector(0, i, testVec(64, i)); err != nil {
			t.Fatal(err)
		}
	}
	recs, upTo, ok := s.UpdatesSince(base, 0, 0)
	if !ok || len(recs) != n || upTo != base+n {
		t.Fatalf("since(base): ok=%v len=%d upTo=%d, want %d records up to %d", ok, len(recs), upTo, n, base+n)
	}
	for i, rec := range recs {
		if rec.Seq != base+uint64(i)+1 {
			t.Fatalf("record %d has seq %d, want %d (contiguous)", i, rec.Seq, base+uint64(i)+1)
		}
		if rec.ID != uint32(i) {
			t.Fatalf("record %d is for id %d, want %d", i, rec.ID, i)
		}
	}
	// Mid-window tail.
	recs, upTo, ok = s.UpdatesSince(base+15, 0, 0)
	if !ok || len(recs) != 5 || upTo != base+n {
		t.Fatalf("since(base+15): ok=%v len=%d upTo=%d", ok, len(recs), upTo)
	}
	// maxRecords caps the batch; upTo reflects the cut.
	recs, upTo, ok = s.UpdatesSince(base, 7, 0)
	if !ok || len(recs) != 7 || upTo != base+7 {
		t.Fatalf("since(base, max 7): ok=%v len=%d upTo=%d", ok, len(recs), upTo)
	}
	// Caught up: empty batch, upTo == since.
	recs, upTo, ok = s.UpdatesSince(base+n, 0, 0)
	if !ok || len(recs) != 0 || upTo != base+n {
		t.Fatalf("since(head): ok=%v len=%d upTo=%d", ok, len(recs), upTo)
	}
	// Before the window: full sync required.
	if _, _, ok := s.UpdatesSince(base-1, 0, 0); base > 0 && ok {
		t.Fatal("since before the window should report ok=false")
	}
	// A structural mutation (Train) resets the window: old seqs fall out.
	if _, err := s.Train(traces, TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.UpdatesSince(base+n, 0, 0); ok {
		t.Fatal("pre-mutation seq should be outside the window after Train")
	}
	if _, _, ok := s.UpdatesSince(s.SnapshotSeq(), 0, 0); !ok {
		t.Fatal("current seq must re-enter the window after a mutation")
	}
}

// TestUpdateCatchUpTransferSize pins the bugfix's core claim: catching up
// K=1000 updates over the incremental stream moves on the order of
// K·recordBytes, under 1% of the full block image.
func TestUpdateCatchUpTransferSize(t *testing.T) {
	tables, _ := buildTestTables(t, 4, 65536, 10)
	s, err := Open(Config{Tables: tables, Seed: 1,
		UpdateLog: UpdateLogOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := s.SnapshotSeq()
	const k = 1000
	for i := uint32(0); i < k; i++ {
		if err := s.UpdateVector(int(i)%4, i%65536, testVec(64, i)); err != nil {
			t.Fatal(err)
		}
	}
	recs, upTo, ok := s.UpdatesSince(base, k, 1<<30)
	if !ok || len(recs) != k || upTo != base+k {
		t.Fatalf("catch-up batch: ok=%v len=%d upTo=%d", ok, len(recs), upTo)
	}
	transfer := 0
	for _, rec := range recs {
		transfer += EncodedUpdateLen(len(rec.Raw))
	}
	image := s.device.NumBlocks() * nvm.BlockSize
	if transfer >= image/100 {
		t.Fatalf("catch-up moved %d bytes, want < 1%% of the %d-byte image", transfer, image)
	}
}
