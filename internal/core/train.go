package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bandana/internal/alloc"
	"bandana/internal/cache"
	"bandana/internal/layout"
	"bandana/internal/mrc"
	"bandana/internal/shp"
	"bandana/internal/sim"
	"bandana/internal/trace"
)

// TrainReport summarises what Train decided for each table.
type TrainReport struct {
	Tables []TableTrainReport
}

// TableTrainReport is the per-table outcome of training.
type TableTrainReport struct {
	Name string
	// TrainingQueries and TrainingLookups describe the training trace.
	TrainingQueries int
	TrainingLookups int64
	// InitialFanout / FinalFanout are SHP's average query fanout before and
	// after partitioning.
	InitialFanout float64
	FinalFanout   float64
	// CacheVectors is the DRAM allocation chosen for this table.
	CacheVectors int
	// Threshold is the prefetch-admission threshold chosen by the
	// miniature caches.
	Threshold uint32
	// MiniatureGain is the effective bandwidth increase predicted by the
	// miniature cache at the chosen threshold.
	MiniatureGain float64
}

// Train partitions, allocates and tunes the store using per-table training
// traces. traces[i] corresponds to table i; a nil entry leaves that table
// untouched (identity layout, even-split cache, no prefetching).
func (s *Store) Train(traces []*trace.Trace, opts TrainOptions) (*TrainReport, error) {
	if err := s.checkWritable(); err != nil {
		return nil, err
	}
	if len(traces) != len(s.tables) {
		return nil, fmt.Errorf("core: got %d traces for %d tables", len(traces), len(s.tables))
	}
	opts.defaults()
	report := &TrainReport{Tables: make([]TableTrainReport, len(s.tables))}

	// Validate the traces before mutating anything, so a bad input cannot
	// leave the data dir flagged as interrupted (see the marker below).
	for i, tr := range traces {
		if tr != nil && tr.NumVectors != s.tables[i].src.NumVectors() {
			return nil, fmt.Errorf("core: table %q: trace covers %d vectors, table has %d",
				s.tables[i].name, tr.NumVectors, s.tables[i].src.NumVectors())
		}
	}

	// Whole-store mutators are serialized: two concurrent Trains (or a
	// Train racing a LoadState) would race the rewrite marker and persist
	// protocol below.
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()

	// Training rewrites whole tables, which is only crash-consistent as a
	// unit on the file backend: set the rewrite marker first so a crash
	// before the new state is persisted makes the data dir refuse to reopen
	// with a stale layout. Cleared after Persist below — or on an error
	// path, provided no table was actually rewritten yet (rewroteAny), so a
	// pure compute failure cannot brick a still-consistent data dir.
	if err := s.markDirMutation(); err != nil {
		return nil, err
	}
	var rewroteAny atomic.Bool
	failErr := func(err error) (*TrainReport, error) {
		if !rewroteAny.Load() {
			if cerr := s.clearDirMutation(); cerr != nil {
				return nil, errors.Join(err, cerr)
			}
		}
		return nil, err
	}

	// Phase 1 (parallel across tables): partition with SHP, rewrite NVM,
	// compute access counts and hit-rate curves.
	type phase1 struct {
		hrc *mrc.HRC
		err error
	}
	results := make([]phase1, len(s.tables))
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	for i := range s.tables {
		if traces[i] == nil {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = s.trainTable(i, traces[i], opts, report, &rewroteAny)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if results[i].err != nil {
			return failErr(results[i].err)
		}
	}

	// Phase 2: allocate the DRAM budget across tables using the hit-rate
	// curves (tables without a trace keep their current allocation and are
	// excluded from the optimisation).
	budget := 0
	var demands []alloc.TableDemand
	var demandIdx []int
	for i, st := range s.tables {
		cacheCap := st.loadState().cacheCap
		budget += cacheCap
		if traces[i] == nil || results[i].hrc == nil {
			budget -= cacheCap // keep their share reserved as-is
			continue
		}
		demands = append(demands, alloc.TableDemand{
			Name:       st.name,
			HRC:        results[i].hrc,
			MaxVectors: st.src.NumVectors(),
			MinVectors: st.blockVectors,
		})
		demandIdx = append(demandIdx, i)
	}
	if len(demands) > 0 && budget > 0 {
		allocRes, err := alloc.Allocate(demands, alloc.Options{TotalVectors: budget})
		if err != nil {
			return failErr(fmt.Errorf("core: DRAM allocation: %w", err))
		}
		for di, ti := range demandIdx {
			s.tables[ti].resizeCache(allocRes.Vectors[di])
			report.Tables[ti].CacheVectors = allocRes.Vectors[di]
		}
	}

	// Phase 3 (parallel): tune the prefetch-admission threshold per table
	// with miniature caches at the allocated cache size.
	if !opts.SkipThresholdTuning {
		var wg2 sync.WaitGroup
		errs := make([]error, len(s.tables))
		for i := range s.tables {
			if traces[i] == nil {
				continue
			}
			wg2.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg2.Done()
				defer func() { <-sem }()
				errs[i] = s.tuneTable(i, traces[i], opts, report)
			}(i)
		}
		wg2.Wait()
		for _, err := range errs {
			if err != nil {
				return failErr(err)
			}
		}
	}
	// A file-backed store persists the trained state alongside the (already
	// rewritten) blocks, so a restart serves the trained layout without
	// retraining.
	if s.dataDir != "" {
		if err := s.Persist(); err != nil {
			return nil, fmt.Errorf("core: persist trained state: %w", err)
		}
		if err := s.clearDirMutation(); err != nil {
			return nil, err
		}
	}
	s.noteStructuralMutation()
	return report, nil
}

// trainTable runs SHP for one table, rewrites its NVM blocks and computes
// its access statistics. It fills the per-table report entry and returns the
// hit-rate curve for the allocation phase. rewroteAny is set just before the
// first NVM mutation so Train's error paths know whether the data dir is
// still pristine.
func (s *Store) trainTable(i int, tr *trace.Trace, opts TrainOptions, report *TrainReport, rewroteAny *atomic.Bool) (out struct {
	hrc *mrc.HRC
	err error
}) {
	st := s.tables[i]
	if tr.NumVectors != st.src.NumVectors() {
		out.err = fmt.Errorf("core: table %q: trace covers %d vectors, table has %d",
			st.name, tr.NumVectors, st.src.NumVectors())
		return out
	}
	rep := &report.Tables[i]
	rep.Name = st.name
	rep.TrainingQueries = len(tr.Queries)
	rep.TrainingLookups = tr.Lookups()

	blockVectors := st.blockVectors
	if opts.BlockVectors > 0 {
		blockVectors = opts.BlockVectors
	}

	counts := tr.AccessCounts()

	newLayout := st.loadState().layout
	if !opts.SkipPartitioning {
		queries := make([][]uint32, len(tr.Queries))
		for qi, q := range tr.Queries {
			queries[qi] = q
		}
		res, err := shp.Partition(st.src.NumVectors(), queries, shp.Options{
			BlockVectors: blockVectors,
			Iterations:   opts.SHPIterations,
			Seed:         s.seed + int64(i),
		})
		if err != nil {
			out.err = fmt.Errorf("core: table %q: %w", st.name, err)
			return out
		}
		rep.InitialFanout = res.InitialFanout
		rep.FinalFanout = res.FinalFanout
		l, err := layout.FromOrder(res.Order, st.blockVectors)
		if err != nil {
			out.err = fmt.Errorf("core: table %q: %w", st.name, err)
			return out
		}
		newLayout = l
	}

	// Install the new layout and rewrite the table's NVM blocks — one
	// atomic step with respect to concurrent lookups and updates.
	rewroteAny.Store(true)
	if err := s.rewriteTable(st, func(ts *tableState) {
		ts.layout = newLayout
		ts.counts = counts
	}); err != nil {
		out.err = err
		return out
	}

	// Hit-rate curve for the DRAM allocator, from (sampled) stack
	// distances over the flattened lookup stream.
	flat := make([]uint32, 0, tr.Lookups())
	for _, q := range tr.Queries {
		flat = append(flat, q...)
	}
	out.hrc = mrc.SampledStackDistances(flat, opts.HRCSampling).HitRateCurve()
	return out
}

// tuneTable chooses the prefetch-admission threshold for one table with
// miniature caches and enables prefetching.
func (s *Store) tuneTable(i int, tr *trace.Trace, opts TrainOptions, report *TrainReport) error {
	st := s.tables[i]
	snap := st.loadState()
	l := snap.layout
	counts := snap.counts
	cacheCap := snap.cacheCap

	choice, err := sim.TuneThreshold(tr, sim.TunerConfig{
		Layout:       l,
		Counts:       counts,
		CacheVectors: cacheCap,
		SamplingRate: opts.MiniCacheSampling,
		Thresholds:   opts.Thresholds,
	})
	if err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	// Install the tuned threshold as an admission policy — the same
	// cache.ThresholdAdmit implementation the miniature-cache simulation
	// just evaluated, so serving behaves exactly as simulated.
	st.mutateState(func(ts *tableState) {
		ts.threshold = choice.Threshold
		ts.prefetch = true
		ts.policy = cache.ThresholdAdmit{Counts: counts, Threshold: choice.Threshold}
	})

	rep := &report.Tables[i]
	rep.Threshold = choice.Threshold
	rep.MiniatureGain = choice.MiniatureGain
	if rep.CacheVectors == 0 {
		rep.CacheVectors = cacheCap
	}
	return nil
}
