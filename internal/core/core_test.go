package core

import (
	"math"
	"sync"
	"testing"

	"bandana/internal/nvm"
	"bandana/internal/table"
	"bandana/internal/trace"
)

// buildTestTables creates small aligned tables + traces for store tests.
func buildTestTables(t *testing.T, numTables, vectorsPerTable, queries int) ([]*table.Table, []*trace.Trace) {
	t.Helper()
	tables := make([]*table.Table, numTables)
	traces := make([]*trace.Trace, numTables)
	for i := 0; i < numTables; i++ {
		p := trace.Profile{
			Name:               "t" + string(rune('A'+i)),
			NumVectors:         vectorsPerTable,
			AvgLookups:         20,
			CompulsoryMissFrac: 0.08,
			Locality:           0.9,
			CommunitySize:      64,
			ReuseSkew:          3,
			Seed:               int64(100 + i),
		}
		tr := trace.GenerateTable(p, queries)
		traces[i] = tr
		communities := trace.CommunityAssignment(p)
		numComm := 0
		for _, c := range communities {
			if int(c) >= numComm {
				numComm = int(c) + 1
			}
		}
		g := table.Generate(p.Name, table.GenerateOptions{
			NumVectors:  vectorsPerTable,
			Dim:         64,
			NumClusters: numComm,
			Seed:        int64(i),
			Assignments: communities,
		})
		tables[i] = g.Table
	}
	return tables, traces
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
	if _, err := Open(Config{Tables: []*table.Table{nil}}); err == nil {
		t.Fatal("nil table should error")
	}
	empty := table.New("empty", 0, 8)
	if _, err := Open(Config{Tables: []*table.Table{empty}}); err == nil {
		t.Fatal("empty table should error")
	}
	big := table.New("big", 4, 4096)
	if _, err := Open(Config{Tables: []*table.Table{big}}); err == nil {
		t.Fatal("vector larger than a block should error")
	}
	a := table.New("dup", 4, 8)
	b := table.New("dup", 4, 8)
	if _, err := Open(Config{Tables: []*table.Table{a, b}}); err == nil {
		t.Fatal("duplicate names should error")
	}
}

func TestOpenLookupRoundTrip(t *testing.T) {
	tables, _ := buildTestTables(t, 2, 2048, 10)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.NumTables() != 2 {
		t.Fatalf("NumTables = %d", s.NumTables())
	}
	if len(s.TableNames()) != 2 {
		t.Fatalf("TableNames = %v", s.TableNames())
	}
	for _, id := range []uint32{0, 1, 31, 32, 2047} {
		got, err := s.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := tables[0].Vector(id)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("vector %d element %d: got %g want %g", id, d, got[d], want[d])
			}
		}
	}
	// Second lookup of the same vector must be a cache hit (no extra block
	// read).
	before := s.Stats()[0].BlockReads
	if _, err := s.Lookup(0, 0); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()[0].BlockReads
	if after != before {
		t.Fatalf("repeated lookup should hit the cache: block reads %d -> %d", before, after)
	}
}

func TestLookupErrors(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 5)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Lookup(5, 0); err == nil {
		t.Fatal("bad table index should error")
	}
	if _, err := s.Lookup(0, 99999); err == nil {
		t.Fatal("bad vector id should error")
	}
	if _, err := s.LookupByName("nosuch", 0); err == nil {
		t.Fatal("bad table name should error")
	}
	if _, err := s.TableIndex("nosuch"); err == nil {
		t.Fatal("bad table name should error")
	}
	if _, err := s.LookupByName(tables[0].Name, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLookupBatchAndServeRequest(t *testing.T) {
	tables, _ := buildTestTables(t, 2, 1024, 5)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, Seed: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	vecs, err := s.LookupBatch(1, []uint32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 3 || len(vecs[0]) != 64 {
		t.Fatalf("batch result shape wrong")
	}
	out, err := s.ServeRequest(Request{{1, 2}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 2 || len(out[1]) != 1 {
		t.Fatalf("request result shape wrong")
	}
	if _, err := s.ServeRequest(Request{{1}, {1}, {1}}); err == nil {
		t.Fatal("request with too many tables should error")
	}
	if _, err := s.LookupBatch(0, []uint32{99999}); err == nil {
		t.Fatal("bad id in batch should error")
	}
}

func TestTrainEnablesPrefetchingAndImprovesEffectiveBandwidth(t *testing.T) {
	tables, traces := buildTestTables(t, 2, 4096, 1200)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 600, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Serve the evaluation half untrained (baseline behaviour).
	trains := make([]*trace.Trace, len(traces))
	evals := make([]*trace.Trace, len(traces))
	for i, tr := range traces {
		trains[i], evals[i] = tr.Split(0.5)
	}
	serve := func() []TableStats {
		s.ResetStats()
		for ti, tr := range evals {
			for _, q := range tr.Queries {
				for _, id := range q {
					if _, err := s.Lookup(ti, id); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return s.Stats()
	}
	baselineStats := serve()

	report, err := s.Train(trains, TrainOptions{SHPIterations: 8, MiniCacheSampling: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Tables) != 2 {
		t.Fatalf("report covers %d tables", len(report.Tables))
	}
	for i, tr := range report.Tables {
		if tr.Name == "" || tr.TrainingQueries == 0 {
			t.Fatalf("table %d report incomplete: %+v", i, tr)
		}
		if tr.FinalFanout > tr.InitialFanout {
			t.Fatalf("table %d: SHP made fanout worse (%.2f -> %.2f)", i, tr.InitialFanout, tr.FinalFanout)
		}
		if tr.CacheVectors <= 0 {
			t.Fatalf("table %d: no DRAM allocated", i)
		}
	}
	trainedStats := serve()

	for i := range trainedStats {
		if !trainedStats[i].Prefetching {
			t.Fatalf("table %d: prefetching not enabled after training", i)
		}
		// Training must not corrupt data and should reduce block reads for
		// the same workload (strictly fewer NVM reads = higher effective
		// bandwidth).
		if trainedStats[i].BlockReads >= baselineStats[i].BlockReads {
			t.Errorf("table %d: block reads did not drop after training: %d -> %d",
				i, baselineStats[i].BlockReads, trainedStats[i].BlockReads)
		}
		if trainedStats[i].EffectiveBandwidth <= baselineStats[i].EffectiveBandwidth {
			t.Errorf("table %d: effective bandwidth did not improve: %.4f -> %.4f",
				i, baselineStats[i].EffectiveBandwidth, trainedStats[i].EffectiveBandwidth)
		}
	}

	// Data integrity after the layout rewrite.
	for _, id := range []uint32{0, 100, 4095} {
		got, err := s.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := tables[0].Vector(id)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("vector %d corrupted after training", id)
			}
		}
	}
}

func TestTrainValidation(t *testing.T) {
	tables, traces := buildTestTables(t, 1, 1024, 50)
	s, err := Open(Config{Tables: tables, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Train(nil, TrainOptions{}); err == nil {
		t.Fatal("trace count mismatch should error")
	}
	bad := &trace.Trace{TableName: "x", NumVectors: 10, Queries: []trace.Query{{1}}}
	if _, err := s.Train([]*trace.Trace{bad}, TrainOptions{}); err == nil {
		t.Fatal("trace with wrong vector count should error")
	}
	// Nil trace entries are allowed and leave the table untrained.
	rep, err := s.Train([]*trace.Trace{nil}, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables[0].TrainingQueries != 0 {
		t.Fatal("nil trace should leave the table untrained")
	}
	_ = traces
}

func TestTrainSkipOptions(t *testing.T) {
	tables, traces := buildTestTables(t, 1, 2048, 400)
	s, err := Open(Config{Tables: tables, DRAMBudgetVectors: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Train(traces, TrainOptions{SkipPartitioning: true, SkipThresholdTuning: true, MiniCacheSampling: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables[0].FinalFanout != 0 {
		t.Fatalf("partitioning should have been skipped")
	}
	st := s.Stats()[0]
	if st.Prefetching {
		t.Fatalf("threshold tuning skipped, prefetching should stay off")
	}
}

func TestUpdateVectorWriteThrough(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 10)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, Seed: 6}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Prime the cache with the old value.
	if _, err := s.Lookup(0, 7); err != nil {
		t.Fatal(err)
	}
	newVec := make([]float32, 64)
	for i := range newVec {
		newVec[i] = float32(i) * 0.5
	}
	if err := s.UpdateVector(0, 7, newVec); err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for d := range newVec {
		if math.Abs(float64(got[d]-newVec[d])) > 0.01 {
			t.Fatalf("updated vector not visible: element %d = %g want %g", d, got[d], newVec[d])
		}
	}
	if err := s.UpdateVector(0, 7, []float32{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if err := s.UpdateVector(9, 7, newVec); err == nil {
		t.Fatal("bad table index should error")
	}
	if err := s.UpdateVector(0, 99999, newVec); err == nil {
		t.Fatal("bad vector id should error")
	}
	// Endurance accounting moved.
	if s.DeviceStats().BlocksWritten == 0 {
		t.Fatal("update should write to the device")
	}
}

func TestConcurrentLookups(t *testing.T) {
	tables, _ := buildTestTables(t, 2, 2048, 10)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 300, Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := uint32((i*13 + w*997) % 2048)
				if _, err := s.Lookup(w%2, id); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats := s.Stats()
	if stats[0].Lookups+stats[1].Lookups != 4000 {
		t.Fatalf("lookups = %d", stats[0].Lookups+stats[1].Lookups)
	}
}

func TestOpenWithProvidedDevice(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 5)
	// Too small a device must be rejected.
	small := nvm.NewDevice(nvm.DeviceConfig{NumBlocks: 2, Seed: 1})
	if _, err := Open(Config{Tables: tables, Device: small}); err == nil {
		t.Fatal("undersized device should be rejected")
	}
	big := nvm.NewDevice(nvm.DeviceConfig{NumBlocks: 64, Seed: 1})
	s, err := Open(Config{Tables: tables, Device: big})
	if err != nil {
		t.Fatal(err)
	}
	if s.Device() != big {
		t.Fatal("store should adopt the provided device")
	}
	s.Close() // must not close the provided device
	buf := make([]byte, nvm.BlockSize)
	if _, err := big.ReadBlock(0, buf); err != nil {
		t.Fatal("provided device should remain usable after store.Close")
	}
	big.Close()
}

func TestStatsAndReset(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 5)
	s, err := Open(Config{Tables: tables, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Lookup(0, 1)
	s.Lookup(0, 1)
	st := s.Stats()[0]
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate = %g", st.HitRate)
	}
	if st.Latency.Count != 1 {
		t.Fatalf("latency observations = %d", st.Latency.Count)
	}
	if st.EffectiveBandwidth <= 0 {
		t.Fatalf("effective bandwidth should be positive")
	}
	s.ResetStats()
	if s.Stats()[0].Lookups != 0 {
		t.Fatal("reset failed")
	}
}

func BenchmarkStoreLookup(b *testing.B) {
	p := trace.Profile{Name: "bench", NumVectors: 8192, AvgLookups: 20, CompulsoryMissFrac: 0.08,
		Locality: 0.9, CommunitySize: 64, ReuseSkew: 3, Seed: 1}
	tbl := table.Generate("bench", table.GenerateOptions{NumVectors: 8192, Dim: 64, NumClusters: 128, Seed: 1})
	s, err := Open(Config{Tables: []*table.Table{tbl.Table}, DRAMBudgetVectors: 1024, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tr := trace.GenerateTable(p, 200)
	flat := make([]uint32, 0)
	for _, q := range tr.Queries {
		flat = append(flat, q...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup(0, flat[i%len(flat)])
	}
}
