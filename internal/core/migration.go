// Live background re-layout ("migration"): installing a new physical block
// layout for one table while the store keeps serving, with a commit protocol
// that survives kill -9 at any instant.
//
// The offline rewrite path (Train / LoadState) uses the rewrite.dirty
// marker: a crash mid-rewrite makes the data dir refuse to reopen, which is
// acceptable for an operator-driven retrain but not for a background loop
// that runs unattended. Migration therefore generalizes the manifest commit
// idea into a redo protocol:
//
//  1. The full new block image of the table is staged to migration.img
//     (temp file + fsync + rename).
//  2. migration.bnd — table name, new placement order, staged-image CRC —
//     is committed with the same temp+rename+dirsync dance as the main
//     manifest. This rename is the commit point.
//  3. The staged image is bulk-copied into the table's block range, the new
//     layout is published, and the state file is persisted.
//  4. migration.bnd and migration.img are removed.
//
// A crash before step 2 leaves at most an orphan staging file: the store
// reopens with the old layout (blocks were never touched). A crash after
// step 2 reopens by *redoing* steps 3-4 from the staged image — which is
// idempotent — so the store always lands on exactly the old or exactly the
// new layout, never a torn mix, and no reopen is ever refused.
package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"bandana/internal/layout"
	"bandana/internal/nvm"
)

const (
	// MigrationManifestName is the migration commit record inside a data
	// dir; its presence means a background re-layout must be redone from
	// the staged image on the next open.
	MigrationManifestName = "migration.bnd"
	// MigrationImageName is the staged new block image of the migrating
	// table.
	MigrationImageName = "migration.img"

	migrationMagic   = "BNDMIGR1"
	migrationVersion = 1
)

// migrationCrashHook, when non-nil, is invoked between migration stages so
// crash-injection tests can kill the process at a precise point:
// "staged" (image + manifest durable, blocks untouched), "installed" (new
// image copied in, state file not yet persisted), "persisted" (state
// durable, migration record not yet removed).
var migrationCrashHook func(stage string)

func migrationStage(stage string) {
	if migrationCrashHook != nil {
		migrationCrashHook(stage)
	}
}

// migrationRecord is a decoded migration.bnd.
type migrationRecord struct {
	table    string
	order    []uint32
	imageLen int64
	imageCRC uint32
}

// stageMigration makes the new image and its commit record durable. After
// it returns, the migration will complete even if the process dies
// immediately (reopen redoes the copy from the staged files).
func (s *Store) stageMigration(st *storeTable, l *layout.Layout, img []byte) error {
	// Drop any leftovers of an earlier aborted migration first, so a crash
	// between the image and record renames below can never pair a stale
	// record with this (mismatched) image.
	if err := removeMigrationFiles(s.dataDir); err != nil {
		return err
	}
	err := atomicWriteFile(s.dataDir, MigrationImageName, func(w io.Writer) error {
		_, werr := w.Write(img)
		return werr
	})
	if err != nil {
		return fmt.Errorf("core: stage migration image: %w", err)
	}
	migrationStage("image-staged")

	var payload bytes.Buffer
	payload.WriteString(migrationMagic)
	varint := make([]byte, binary.MaxVarintLen64)
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(varint, v)
		payload.Write(varint[:n])
	}
	writeUvarint(migrationVersion)
	writeUvarint(uint64(len(st.name)))
	payload.WriteString(st.name)
	order := l.Order()
	writeUvarint(uint64(len(order)))
	for _, id := range order {
		writeUvarint(uint64(id))
	}
	writeUvarint(uint64(len(img)))
	writeUvarint(uint64(crc32.Checksum(img, manifestCRCTable)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), manifestCRCTable))

	// The rename inside is the migration commit point.
	err = atomicWriteFile(s.dataDir, MigrationManifestName, func(w io.Writer) error {
		if _, werr := w.Write(payload.Bytes()); werr != nil {
			return werr
		}
		_, werr := w.Write(crc[:])
		return werr
	})
	if err != nil {
		return fmt.Errorf("core: stage migration manifest: %w", err)
	}
	return nil
}

// clearMigration removes the migration record and staged image after the
// migrated state is fully durable.
func (s *Store) clearMigration() error {
	return removeMigrationFiles(s.dataDir)
}

func removeMigrationFiles(dir string) error {
	for _, name := range []string{MigrationManifestName, MigrationImageName} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("core: clear migration: %w", err)
		}
	}
	return syncDir(dir)
}

// readMigrationRecord decodes and verifies dir's migration.bnd. It returns
// (nil, nil) when no migration is pending.
func readMigrationRecord(dir string) (*migrationRecord, error) {
	raw, err := os.ReadFile(filepath.Join(dir, MigrationManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: read migration manifest: %w", err)
	}
	if len(raw) < len(migrationMagic)+4 {
		return nil, fmt.Errorf("core: migration manifest too short (%d bytes)", len(raw))
	}
	payload, crc := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(payload, manifestCRCTable) != crc {
		return nil, fmt.Errorf("core: migration manifest checksum mismatch")
	}
	if string(payload[:len(migrationMagic)]) != migrationMagic {
		return nil, fmt.Errorf("core: bad migration magic %q", payload[:len(migrationMagic)])
	}
	br := bytes.NewReader(payload[len(migrationMagic):])
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != migrationVersion {
		return nil, fmt.Errorf("core: unsupported migration version %d", version)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("core: implausible migration name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	rec := &migrationRecord{table: string(name)}
	orderLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if orderLen > 1<<32 {
		return nil, fmt.Errorf("core: implausible migration order length %d", orderLen)
	}
	rec.order = make([]uint32, 0, min(orderLen, 1<<16))
	for i := uint64(0); i < orderLen; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		rec.order = append(rec.order, uint32(v))
	}
	imgLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	rec.imageLen = int64(imgLen)
	imgCRC, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	rec.imageCRC = uint32(imgCRC)
	return rec, nil
}

// redoMigration replays a committed-but-unfinished migration's copy phase:
// it verifies the staged image against the record and bulk-writes it into
// the table's block range. Idempotent — safe to crash and redo any number
// of times. The caller installs the recorded layout and persists state.
func redoMigration(dir string, rec *migrationRecord, fs *nvm.FileStore, e manifestEntry) error {
	img, err := os.ReadFile(filepath.Join(dir, MigrationImageName))
	if err != nil {
		return fmt.Errorf("core: read staged migration image: %w", err)
	}
	// The manifest was committed only after the image was durable, so a
	// mismatch here means real corruption, not a crash artifact.
	if int64(len(img)) != rec.imageLen {
		return fmt.Errorf("core: staged migration image is %d bytes, record says %d", len(img), rec.imageLen)
	}
	if crc32.Checksum(img, manifestCRCTable) != rec.imageCRC {
		return fmt.Errorf("core: staged migration image checksum mismatch")
	}
	if len(img) != e.numBlocks*nvm.BlockSize {
		return fmt.Errorf("core: staged migration image covers %d bytes, table %q spans %d blocks",
			len(img), e.name, e.numBlocks)
	}
	if err := fs.WriteBlocksUnjournaled(e.blockBase, img); err != nil {
		return fmt.Errorf("core: redo migration copy: %w", err)
	}
	if err := fs.Flush(); err != nil {
		return fmt.Errorf("core: redo migration copy: %w", err)
	}
	return nil
}
