package core

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"bandana/internal/table"
	"bandana/internal/trace"
)

// migTestTables builds deterministic tables + traces without a *testing.T so
// the crash-injection child process (which runs as its own test) can
// construct the identical store the parent verifies against.
func migTestTables(numTables, vectorsPerTable, queries int) ([]*table.Table, []*trace.Trace) {
	tables := make([]*table.Table, numTables)
	traces := make([]*trace.Trace, numTables)
	for i := 0; i < numTables; i++ {
		p := trace.Profile{
			Name:               fmt.Sprintf("mig%d", i),
			NumVectors:         vectorsPerTable,
			AvgLookups:         20,
			CompulsoryMissFrac: 0.08,
			Locality:           0.9,
			CommunitySize:      64,
			ReuseSkew:          3,
			Seed:               int64(500 + i),
		}
		traces[i] = trace.GenerateTable(p, queries)
		g := table.Generate(p.Name, table.GenerateOptions{
			NumVectors:  vectorsPerTable,
			Dim:         64,
			NumClusters: vectorsPerTable / 64,
			Seed:        int64(40 + i),
			Assignments: trace.CommunityAssignment(p),
		})
		tables[i] = g.Table
	}
	return tables, traces
}

// driveAdaptedMigration opens a file-backed store on dir, records a window
// and runs one adaptation epoch with an aggressive relayout policy, so a
// migration deterministically runs. Shared by the crash child and the
// in-process migration tests.
func driveAdaptedMigration(dir string, tables []*table.Table, traces []*trace.Trace) (*Store, *AdaptEpochReport, error) {
	cfg := Config{Backend: BackendFile, DataDir: dir, Seed: 3, DRAMBudgetVectors: 256, Direct: testDirect()}
	if !DirInitialized(dir) {
		cfg.Tables = tables
	}
	s, err := Open(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := s.StartAdaptation(AdaptOptions{
		MinQueries:      8,
		RelayoutEvery:   1,
		RelayoutMinGain: 0.01,
		SHPIterations:   8,
	}); err != nil {
		s.Close()
		return nil, nil, err
	}
	for ti, tr := range traces {
		for _, q := range tr.Queries {
			if len(q) == 0 {
				continue
			}
			if _, err := s.LookupBatch(ti, q); err != nil {
				s.Close()
				return nil, nil, err
			}
		}
	}
	rep, err := s.AdaptNow()
	if err != nil {
		s.Close()
		return nil, nil, err
	}
	return s, rep, nil
}

// verifyStoreMatchesTables asserts every vector served by the store equals
// the authoritative table contents — a torn layout would decode garbage.
func verifyStoreMatchesTables(t *testing.T, s *Store, tables []*table.Table) {
	t.Helper()
	for ti, tbl := range tables {
		want := make([]float32, tbl.Dim)
		for id := uint32(0); int(id) < tbl.NumVectors(); id++ {
			got, err := s.Lookup(ti, id)
			if err != nil {
				t.Fatalf("table %d id %d: %v", ti, id, err)
			}
			if err := tbl.VectorInto(want, id); err != nil {
				t.Fatal(err)
			}
			if !vecsEqual(got, want) {
				t.Fatalf("table %d id %d: served vector differs from source after migration", ti, id)
			}
		}
	}
}

// TestLiveRelayoutKeepsServing runs concurrent lookups straight through an
// adaptation epoch that migrates the table, and verifies every result was
// correct and the migration actually happened.
func TestLiveRelayoutKeepsServing(t *testing.T) {
	tables, traces := migTestTables(1, 2048, 200)
	store, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.StartAdaptation(AdaptOptions{
		MinQueries:      8,
		RelayoutEvery:   1,
		RelayoutMinGain: 0.01,
		SHPIterations:   8,
	}); err != nil {
		t.Fatal(err)
	}
	// Record a window first so the epoch has signal.
	for _, q := range traces[0].Queries {
		if len(q) == 0 {
			continue
		}
		if _, err := store.LookupBatch(0, q); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			want := make([]float32, tables[0].Dim)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint32((w*7919 + i) % tables[0].NumVectors())
				got, err := store.Lookup(0, id)
				if err != nil {
					t.Errorf("lookup %d: %v", id, err)
					return
				}
				if err := tables[0].VectorInto(want, id); err != nil {
					t.Error(err)
					return
				}
				if !vecsEqual(got, want) {
					t.Errorf("id %d: wrong vector during live migration", id)
					return
				}
			}
		}(w)
	}
	rep, err := store.AdaptNow()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tables[0].Relayout {
		t.Fatalf("expected a migration (fanout %.2f -> %.2f)", rep.Tables[0].FanoutBefore, rep.Tables[0].FanoutAfter)
	}
	if rep.Tables[0].FanoutAfter >= rep.Tables[0].FanoutBefore {
		t.Fatalf("migration did not improve fanout: %.2f -> %.2f", rep.Tables[0].FanoutBefore, rep.Tables[0].FanoutAfter)
	}
	verifyStoreMatchesTables(t, store, tables)
	stats := store.AdaptationStats()
	if stats.Relayouts != 1 || stats.Tables[0].Relayouts != 1 {
		t.Fatalf("relayout counters = %d/%d, want 1/1", stats.Relayouts, stats.Tables[0].Relayouts)
	}
	if stats.LastRelayoutDuration <= 0 {
		t.Fatal("LastRelayoutDuration not recorded")
	}
}

// TestMigrationCrashChild is the crash-injection subprocess: it drives a
// migration on the directory named by BANDANA_MIG_CRASH_DIR and SIGKILLs
// itself at stage BANDANA_MIG_CRASH_STAGE. Skipped in normal runs.
func TestMigrationCrashChild(t *testing.T) {
	dir := os.Getenv("BANDANA_MIG_CRASH_DIR")
	stage := os.Getenv("BANDANA_MIG_CRASH_STAGE")
	if dir == "" || stage == "" {
		t.Skip("crash child only runs under TestMigrationKill9Recovery")
	}
	migrationCrashHook = func(s string) {
		if s == stage {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			time.Sleep(10 * time.Second) // never reached
		}
	}
	defer func() { migrationCrashHook = nil }()
	tables, traces := migTestTables(1, 2048, 200)
	s, _, err := driveAdaptedMigration(dir, tables, traces)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}

// TestMigrationKill9Recovery injects kill -9 at every stage of a live
// background re-layout (before the commit record, after it, after the
// copy, after the state persist) and verifies the data dir reopens cleanly
// to a consistent layout serving exactly the source vectors — never a torn
// mix, and never a refused open.
func TestMigrationKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	tables, _ := migTestTables(1, 2048, 200)
	stages := []struct {
		stage string
		// recovered says whether the reopen should report a redone
		// migration (only stages at or past the commit record).
		recovered bool
	}{
		{"image-staged", false},
		{"staged", true},
		{"installed", true},
		{"persisted", true},
	}
	for _, tc := range stages {
		t.Run(tc.stage, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			// The child manages its own backend (always file); only the
			// direct-vs-buffered choice of the current leg is forwarded.
			childBackend := ""
			if testDirect() {
				childBackend = BackendFile + "-direct"
			}
			cmd := exec.Command(os.Args[0], "-test.run", "^TestMigrationCrashChild$", "-test.v")
			cmd.Env = append(os.Environ(),
				"BANDANA_MIG_CRASH_DIR="+dir,
				"BANDANA_MIG_CRASH_STAGE="+tc.stage,
				"BANDANA_TEST_BACKEND="+childBackend,
			)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("child survived; stage %q never reached:\n%s", tc.stage, out)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ProcessState.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
				t.Fatalf("child did not die by SIGKILL: %v\n%s", err, out)
			}

			reopened, err := Open(Config{Backend: BackendFile, DataDir: dir, Seed: 3, Direct: testDirect()})
			if err != nil {
				t.Fatalf("reopen after kill -9 at %q: %v", tc.stage, err)
			}
			defer reopened.Close()
			if reopened.RecoveredMigration() != tc.recovered {
				t.Fatalf("RecoveredMigration = %v, want %v", reopened.RecoveredMigration(), tc.recovered)
			}
			verifyStoreMatchesTables(t, reopened, tables)

			// The migration record must be gone and a second reopen clean.
			if _, err := os.Stat(filepath.Join(dir, MigrationManifestName)); !os.IsNotExist(err) {
				t.Fatalf("migration record still present after recovery: %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, MigrationImageName)); !os.IsNotExist(err) {
				t.Fatalf("migration image still present after recovery: %v", err)
			}
			reopened.Close()
			again, err := Open(Config{Backend: BackendFile, DataDir: dir, Seed: 3, Direct: testDirect()})
			if err != nil {
				t.Fatalf("second reopen: %v", err)
			}
			if again.RecoveredMigration() {
				t.Fatal("second reopen still reports a recovered migration")
			}
			verifyStoreMatchesTables(t, again, tables)
			again.Close()
		})
	}
}

// TestMigrationRecoveryIdempotent simulates a crash *during recovery*: the
// first reopen redoes the migration, then the migration record is put back
// and the dir reopened again — the second redo must land on the same state.
func TestMigrationRecoveryIdempotent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	tables, traces := migTestTables(1, 2048, 200)

	// Run a full migration but stop before cleanup by copying the staged
	// files away mid-protocol.
	var savedMani, savedImg []byte
	migrationCrashHook = func(s string) {
		if s == "installed" {
			var err error
			savedMani, err = os.ReadFile(filepath.Join(dir, MigrationManifestName))
			if err != nil {
				t.Errorf("snapshot manifest: %v", err)
			}
			savedImg, err = os.ReadFile(filepath.Join(dir, MigrationImageName))
			if err != nil {
				t.Errorf("snapshot image: %v", err)
			}
		}
	}
	defer func() { migrationCrashHook = nil }()
	s, rep, err := driveAdaptedMigration(dir, tables, traces)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tables[0].Relayout {
		t.Fatal("no migration ran")
	}
	s.Close()
	if savedMani == nil || savedImg == nil {
		t.Fatal("migration files were not snapshotted")
	}

	// Re-inject the migration record twice; each reopen must redo it to the
	// same consistent result.
	for round := 0; round < 2; round++ {
		if err := os.WriteFile(filepath.Join(dir, MigrationImageName), savedImg, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, MigrationManifestName), savedMani, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Config{Backend: BackendFile, DataDir: dir, Seed: 3, Direct: testDirect()})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !re.RecoveredMigration() {
			t.Fatalf("round %d: migration not redone", round)
		}
		verifyStoreMatchesTables(t, re, tables)
		re.Close()
	}
}
