// Snapshot replication support: exporting a crash-consistent image of the
// whole store (for a primary streaming itself to replicas) and importing such
// an image into a fresh data dir (for a replica bootstrapping from the
// stream).
//
// An export is the store's committed contents rendered from the
// authoritative in-memory tables under the same locks the migration staging
// machinery uses (mutateMu excludes Train/LoadState/migrations, every
// table's updateMu excludes vector updates), so it can never observe a
// half-rewritten table. The manifest and trained state use the exact on-disk
// formats of a file-backed data dir, which makes the import side trivial:
// write the block image through the journal-bypass bulk-load path, drop the
// state file, and commit the manifest last — the same protocol initDir uses.
//
// Exports are identified by a snapshot sequence number that advances on
// every committed mutation of the servable image (UpdateVector, Train,
// LoadState, background re-layout migrations). Replicas poll the seq and
// re-sync when it moves.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"bandana/internal/nvm"
)

// ErrReadOnly is returned by mutating operations on a store opened with
// Config.ReadOnly (e.g. a replica serving a bootstrapped snapshot).
var ErrReadOnly = errors.New("core: store is read-only")

// checkWritable gates every public mutator of the servable image.
func (s *Store) checkWritable() error {
	if s.readOnly {
		return ErrReadOnly
	}
	return nil
}

// ReadOnly reports whether the store rejects mutations (Config.ReadOnly).
func (s *Store) ReadOnly() bool { return s.readOnly }

// SnapshotSeq returns the store's snapshot sequence number. It advances
// after every committed mutation of the servable image, so a replica that
// synced at seq N knows it must re-sync when the primary reports a
// different value.
//
// The seq is not persisted directly; instead it starts boot-stamped (the
// open time in the high bits — see initialSnapshotSeq), which keeps it
// increasing across process restarts: a primary that restarts and mutates
// reports a larger seq than anything it served before, so replicas re-sync
// instead of comparing their recorded seq against a counter that restarted
// from 1. The boot stamp alone has one-second granularity, though, so a
// reopened file-backed store additionally floors the seq at the highest seq
// its replayed update log recorded (see reopenDir) — without that, a quick
// restart would re-issue seqs the previous process already handed out.
func (s *Store) SnapshotSeq() uint64 { return s.snapSeq.Load() }

// initialSnapshotSeq derives a store's starting snapshot seq: an explicit
// override when given (replicas inherit their primary's seq), otherwise the
// open time in seconds shifted left 20 bits. The shift leaves room for a
// million in-process bumps per second while keeping the value below 2^53,
// so the seq survives JSON number round-trips exactly.
func initialSnapshotSeq(override uint64) uint64 {
	if override != 0 {
		return override
	}
	return uint64(time.Now().Unix()) << 20
}

// bumpSnapshotSeq records a committed mutation of the servable image and
// returns the seq it committed at.
func (s *Store) bumpSnapshotSeq() uint64 { return s.snapSeq.Add(1) }

// noteStructuralMutation records a committed mutation that changed more than
// individual vectors (Train, LoadState, adaptation epochs): the seq advances
// AND the update-log window resets, so followers tailing vector records
// full-sync across the change instead of streaming through a layout or
// cache-state transition no record can express.
func (s *Store) noteStructuralMutation() {
	s.bumpSnapshotSeq()
	if s.deltaLog != nil {
		s.deltaLog.invalidate(s.snapSeq.Load())
	}
}

// Snapshot is a self-contained, CRC-protected image of a store: everything a
// replica needs to serve byte-identical vectors. Manifest and State use the
// on-disk formats of a file-backed data dir (manifest.bnd / state.bnd);
// Blocks is the full committed block image in device order.
type Snapshot struct {
	// Seq is the store's snapshot sequence number at export time.
	Seq uint64
	// Manifest is the table-geometry manifest, including its CRC trailer.
	Manifest []byte
	// State is the trained state in the SaveState format (CRC trailer
	// included).
	State []byte
	// Blocks is the full block image (NumBlocks * nvm.BlockSize bytes).
	Blocks []byte
	// BlocksCRC is the CRC-32C of Blocks, the stream's end-to-end check.
	BlocksCRC uint32
}

// TotalBlocks returns the device size implied by the block image.
func (sn *Snapshot) TotalBlocks() int { return len(sn.Blocks) / nvm.BlockSize }

// ExportSnapshot renders a crash-consistent snapshot of the store's
// committed contents. It holds the whole-store mutator lock plus every
// table's update lock while building the image — the same exclusion the
// background-migration staging machinery relies on — so concurrent Train,
// LoadState, UpdateVector or re-layout migrations can never tear the export.
// Serving (lookups, cache fills) is not blocked at any point: the image is
// rendered from the authoritative in-memory tables, not from the device.
func (s *Store) ExportSnapshot() (*Snapshot, error) {
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()
	for _, st := range s.tables {
		st.updateMu.Lock()
		defer st.updateMu.Unlock()
	}

	totalBlocks := 0
	for _, st := range s.tables {
		totalBlocks += st.numBlocks
	}
	blocks := make([]byte, totalBlocks*nvm.BlockSize)
	for _, st := range s.tables {
		dst := blocks[st.blockBase*nvm.BlockSize : (st.blockBase+st.numBlocks)*nvm.BlockSize]
		if err := buildTableImageInto(st, st.loadState().layout, dst); err != nil {
			return nil, err
		}
	}

	var state bytes.Buffer
	if err := s.SaveState(&state); err != nil {
		return nil, fmt.Errorf("core: export state: %w", err)
	}
	return &Snapshot{
		Seq:       s.snapSeq.Load(),
		Manifest:  manifestBytes(s, totalBlocks),
		State:     state.Bytes(),
		Blocks:    blocks,
		BlocksCRC: crc32.Checksum(blocks, manifestCRCTable),
	}, nil
}

// ImportSnapshot materializes a snapshot as a freshly initialized
// file-backed data dir at dir, verifying the block image against its CRC
// first. The blocks go in through the journal-bypass bulk-load path (one
// contiguous write, no write-ahead records) and the manifest is committed
// last, so an interrupted import leaves an uninitialized dir that is simply
// re-imported — never a torn store. The resulting dir reopens through the
// normal Open path (usually with Config.ReadOnly for a serving replica).
func ImportSnapshot(dir string, sn *Snapshot, sync nvm.SyncMode) error {
	if DirInitialized(dir) {
		return fmt.Errorf("core: %s already holds an initialized store", dir)
	}
	if len(sn.Blocks) == 0 || len(sn.Blocks)%nvm.BlockSize != 0 {
		return fmt.Errorf("core: snapshot block image of %d bytes is not block-aligned", len(sn.Blocks))
	}
	if crc := crc32.Checksum(sn.Blocks, manifestCRCTable); crc != sn.BlocksCRC {
		return fmt.Errorf("core: snapshot block image checksum mismatch (got %08x, want %08x)", crc, sn.BlocksCRC)
	}
	entries, totalBlocks, err := parseManifest(sn.Manifest)
	if err != nil {
		return err
	}
	if totalBlocks != sn.TotalBlocks() {
		return fmt.Errorf("core: snapshot manifest expects %d blocks, image has %d", totalBlocks, sn.TotalBlocks())
	}
	// The state must decode and cover exactly the manifest's tables;
	// verifying before any file is written keeps a corrupt stream from
	// leaving half a data dir behind.
	saved, err := decodeSavedStates(bytes.NewReader(sn.State))
	if err != nil {
		return fmt.Errorf("core: snapshot state: %w", err)
	}
	names := make(map[string]int, len(entries))
	for _, e := range entries {
		names[e.name] = e.numVectors
	}
	for _, sv := range saved {
		nv, ok := names[sv.name]
		if !ok {
			return fmt.Errorf("core: snapshot state references unknown table %q", sv.name)
		}
		if len(sv.order) != 0 && len(sv.order) != nv {
			return fmt.Errorf("core: snapshot state for table %q covers %d vectors, manifest says %d",
				sv.name, len(sv.order), nv)
		}
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create snapshot dir: %w", err)
	}
	fs, err := nvm.CreateFileStore(filepath.Join(dir, BlocksFileName), totalBlocks,
		nvm.FileStoreOptions{Sync: sync})
	if err != nil {
		return err
	}
	err = fs.WriteBlocksUnjournaled(0, sn.Blocks)
	if err == nil {
		err = fs.Flush()
	}
	if cerr := fs.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("core: import snapshot blocks: %w", err)
	}
	if err := atomicWriteFile(dir, StateFileName, func(w io.Writer) error {
		_, werr := w.Write(sn.State)
		return werr
	}); err != nil {
		return fmt.Errorf("core: import snapshot state: %w", err)
	}
	// The manifest rename is the commit point, exactly as in initDir.
	if err := atomicWriteFile(dir, ManifestFileName, func(w io.Writer) error {
		_, werr := w.Write(sn.Manifest)
		return werr
	}); err != nil {
		return fmt.Errorf("core: import snapshot manifest: %w", err)
	}
	return nil
}
