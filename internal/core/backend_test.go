package core

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"bandana/internal/nvm"
)

// testBackendConfig adjusts cfg to the backend selected by the
// BANDANA_TEST_BACKEND environment variable, which CI uses to run the core
// suite against every backend. Default (unset or "mem") leaves cfg alone;
// "file" switches to the durable backend over a per-test temp dir;
// "file-direct" additionally opens the block file with O_DIRECT (tests are
// skipped with a notice where the filesystem rejects it).
// BANDANA_TEST_IOSCHED=on additionally routes the suite's miss paths
// through the async I/O scheduler (the CI matrix's scheduler-on leg), which
// must be behaviorally invisible to every test that passes with it off.
// BANDANA_TEST_CACHE overrides the cache engine ("lru" or "vcache") for
// tests that do not pin one themselves — both engines must pass the whole
// suite unchanged.
func testBackendConfig(t *testing.T, cfg Config) Config {
	t.Helper()
	switch os.Getenv("BANDANA_TEST_BACKEND") {
	case BackendFile:
		cfg.Backend = BackendFile
		cfg.DataDir = filepath.Join(t.TempDir(), "store")
	case BackendFile + "-direct":
		dir := t.TempDir()
		if !nvm.DirectIOSupported(dir) {
			t.Skipf("skipping: filesystem at %s rejects O_DIRECT", dir)
		}
		cfg.Backend = BackendFile
		cfg.DataDir = filepath.Join(dir, "store")
		cfg.Direct = true
	}
	if testIOSchedEnabled() {
		cfg.IOSched.Enabled = true
	}
	if cfg.CacheEngine == "" {
		cfg.CacheEngine = os.Getenv("BANDANA_TEST_CACHE")
	}
	return cfg
}

// testDirect reports whether the suite runs its O_DIRECT leg; tests that
// build explicit file-backed Configs pass it as Config.Direct so the direct
// leg exercises them too.
func testDirect() bool {
	return os.Getenv("BANDANA_TEST_BACKEND") == BackendFile+"-direct"
}

// testIOSchedEnabled reports whether the suite runs its scheduler-on leg.
func testIOSchedEnabled() bool {
	v := os.Getenv("BANDANA_TEST_IOSCHED")
	return v == "on" || v == "1"
}

func vecsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(float64(a[i])) && math.IsNaN(float64(b[i]))) {
			return false
		}
	}
	return true
}

// TestCrossBackendStoreEquivalence trains and serves the identical workload
// on a mem-backed and a file-backed store and asserts they are
// indistinguishable: same lookup results, same hit ratios, same per-table
// counters, and byte-identical NVM block images.
func TestCrossBackendStoreEquivalence(t *testing.T) {
	tables, traces := buildTestTables(t, 2, 2048, 150)

	memStore, err := Open(Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer memStore.Close()
	fileStore, err := Open(Config{
		Tables:            tables,
		DRAMBudgetVectors: 256,
		Seed:              7,
		Backend:           BackendFile,
		DataDir:           filepath.Join(t.TempDir(), "store"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fileStore.Close()

	if _, err := memStore.Train(traces, TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fileStore.Train(traces, TrainOptions{}); err != nil {
		t.Fatal(err)
	}

	// Serve the same query stream on both and compare every result.
	for ti, tr := range traces {
		for qi, q := range tr.Queries {
			if qi >= 60 {
				break
			}
			mv, err := memStore.LookupBatch(ti, q)
			if err != nil {
				t.Fatal(err)
			}
			fv, err := fileStore.LookupBatch(ti, q)
			if err != nil {
				t.Fatal(err)
			}
			for i := range mv {
				if !vecsEqual(mv[i], fv[i]) {
					t.Fatalf("table %d query %d id %d: backends return different vectors", ti, qi, q[i])
				}
			}
		}
	}

	// Serving counters (and therefore hit ratios) must match exactly: the
	// trained layouts, thresholds and cache decisions are seed-deterministic
	// and independent of the backing medium.
	ms, fs := memStore.Stats(), fileStore.Stats()
	for i := range ms {
		if ms[i].Lookups != fs[i].Lookups || ms[i].Hits != fs[i].Hits ||
			ms[i].Misses != fs[i].Misses || ms[i].BlockReads != fs[i].BlockReads {
			t.Fatalf("table %s counters diverge: mem %+v file %+v", ms[i].Name, ms[i], fs[i])
		}
		if ms[i].HitRate != fs[i].HitRate {
			t.Fatalf("table %s hit ratio diverges: %v vs %v", ms[i].Name, ms[i].HitRate, fs[i].HitRate)
		}
		if ms[i].Threshold != fs[i].Threshold || ms[i].Prefetching != fs[i].Prefetching {
			t.Fatalf("table %s trained state diverges", ms[i].Name)
		}
	}

	// And the raw block images are byte-identical.
	if memStore.Device().NumBlocks() != fileStore.Device().NumBlocks() {
		t.Fatalf("device sizes diverge")
	}
	mb := make([]byte, nvm.BlockSize)
	fb := make([]byte, nvm.BlockSize)
	for b := 0; b < memStore.Device().NumBlocks(); b++ {
		if _, err := memStore.Device().ReadBlock(b, mb); err != nil {
			t.Fatal(err)
		}
		if _, err := fileStore.Device().ReadBlock(b, fb); err != nil {
			t.Fatal(err)
		}
		for i := range mb {
			if mb[i] != fb[i] {
				t.Fatalf("block %d byte %d diverges between backends", b, i)
			}
		}
	}
}

// TestFileBackendReopenServesWithoutRetraining is the durability acceptance
// path: init a data dir, train, kill the store, reopen with no tables and no
// training, and get identical vectors and trained behaviour back.
func TestFileBackendReopenServesWithoutRetraining(t *testing.T) {
	tables, traces := buildTestTables(t, 2, 2048, 150)
	dir := filepath.Join(t.TempDir(), "store")

	s, err := Open(Config{
		Tables:            tables,
		DRAMBudgetVectors: 256,
		Seed:              3,
		Backend:           BackendFile,
		DataDir:           dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !DirInitialized(dir) {
		t.Fatal("data dir not initialized by Open")
	}
	report, err := s.Train(traces, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite one vector after training: the update must survive too.
	updated := make([]float32, tables[0].Dim)
	for i := range updated {
		updated[i] = float32(i) / 4 // fp16-exact
	}
	if err := s.UpdateVector(0, 42, updated); err != nil {
		t.Fatal(err)
	}

	type probe struct {
		table int
		id    uint32
	}
	probes := []probe{{0, 0}, {0, 42}, {0, 2047}, {1, 1}, {1, 777}, {1, 1500}}
	want := make([][]float32, len(probes))
	for i, p := range probes {
		vec, err := s.Lookup(p.table, p.id)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float32(nil), vec...)
	}
	wantStats := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: no Tables, no Train.
	r, err := Open(Config{Backend: BackendFile, DataDir: dir, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumTables() != 2 {
		t.Fatalf("reopened with %d tables", r.NumTables())
	}
	for i, p := range probes {
		vec, err := r.Lookup(p.table, p.id)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsEqual(vec, want[i]) {
			t.Fatalf("table %d id %d: vector changed across restart", p.table, p.id)
		}
	}
	rs := r.Stats()
	for i := range rs {
		if !rs[i].Prefetching {
			t.Fatalf("table %s: prefetching lost across restart", rs[i].Name)
		}
		if rs[i].Threshold != wantStats[i].Threshold {
			t.Fatalf("table %s: threshold %d != %d across restart", rs[i].Name, rs[i].Threshold, wantStats[i].Threshold)
		}
		if rs[i].CacheVectors != wantStats[i].CacheVectors {
			t.Fatalf("table %s: cache allocation %d != %d across restart", rs[i].Name, rs[i].CacheVectors, wantStats[i].CacheVectors)
		}
		if rs[i].Policy != "threshold-admit" {
			t.Fatalf("table %s: policy %q after reopen", rs[i].Name, rs[i].Policy)
		}
		if rs[i].Threshold != report.Tables[i].Threshold {
			t.Fatalf("table %s: reopened threshold differs from training report", rs[i].Name)
		}
	}
	if got := r.DeviceStats().Store.Backend; got != "file" {
		t.Fatalf("backend reported as %q", got)
	}
}

// TestFileBackendUntrainedReopen covers a dir that was initialized but never
// trained: reopen restores identity layouts and baseline caching.
func TestFileBackendUntrainedReopen(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 512, 10)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Config{Tables: tables, Backend: BackendFile, DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	origin, err := s.Lookup(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	origin = append([]float32(nil), origin...)
	s.Close()

	r, err := Open(Config{Backend: BackendFile, DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	vec, err := r.Lookup(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !vecsEqual(vec, origin) {
		t.Fatal("untrained vectors changed across restart")
	}
	if st := r.Stats()[0]; st.Prefetching {
		t.Fatal("untrained reopen must not enable prefetching")
	}
}

func TestFileBackendValidation(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 256, 5)
	if _, err := Open(Config{Tables: tables, Backend: BackendFile}); err == nil {
		t.Fatal("file backend without DataDir must error")
	}
	if _, err := Open(Config{Tables: tables, DataDir: t.TempDir()}); err == nil {
		t.Fatal("DataDir with mem backend must error")
	}
	if _, err := Open(Config{Tables: tables, Backend: "tape"}); err == nil {
		t.Fatal("unknown backend must error")
	}
	dev := nvm.NewDevice(nvm.DeviceConfig{NumBlocks: 64})
	defer dev.Close()
	if _, err := Open(Config{Tables: tables, Backend: BackendFile, DataDir: t.TempDir(), Device: dev}); err == nil {
		t.Fatal("file backend with explicit Device must error")
	}

	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Config{Tables: tables, Backend: BackendFile, DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(Config{Tables: tables, Backend: BackendFile, DataDir: dir, Seed: 1}); err == nil {
		t.Fatal("reopening an initialized dir with Tables set must error")
	}

	// A failure inside the init sequence (here: the baseline Persist, which
	// a read-only store refuses) must propagate — not be swallowed leaving
	// a manifest-less dir that claims to be an initialized store.
	roDir := filepath.Join(t.TempDir(), "ro")
	if _, err := Open(Config{Tables: tables, Backend: BackendFile, DataDir: roDir, Seed: 1, ReadOnly: true}); err == nil {
		t.Fatal("initializing a fresh dir read-only must error (baseline persist cannot run)")
	}
	if DirInitialized(roDir) {
		t.Fatal("failed init left a committed manifest behind")
	}
}

func TestFileBackendRejectsCorruptManifest(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 256, 5)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Config{Tables: tables, Backend: BackendFile, DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, ManifestFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Backend: BackendFile, DataDir: dir}); err == nil {
		t.Fatal("corrupt manifest must be rejected")
	}
}

// TestFileBackendInterruptedRewriteDetected: a data dir whose previous
// process died during a whole-table rewrite (Train/LoadState) carries the
// rewrite marker and must refuse to reopen rather than decode a stale
// layout; a completed rewrite cycle must clear the marker.
func TestFileBackendInterruptedRewriteDetected(t *testing.T) {
	tables, traces := buildTestTables(t, 1, 512, 40)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Config{Tables: tables, Backend: BackendFile, DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Train(traces, TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	// A clean Train cycle leaves no marker behind.
	if _, err := os.Stat(filepath.Join(dir, rewriteMarkerName)); !os.IsNotExist(err) {
		t.Fatalf("rewrite marker still present after Train: %v", err)
	}
	s.Close()

	// Simulate a crash mid-rewrite: the marker exists, state is stale.
	if err := os.WriteFile(filepath.Join(dir, rewriteMarkerName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Backend: BackendFile, DataDir: dir, Seed: 1}); err == nil {
		t.Fatal("reopen must refuse a dir with an interrupted rewrite")
	}
	if err := os.Remove(filepath.Join(dir, rewriteMarkerName)); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Config{Backend: BackendFile, DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

// A corrupted state.bnd must fail the reopen loudly (CRC trailer) — a
// decodable-but-wrong saved order would otherwise silently serve wrong
// vectors.
func TestFileBackendRejectsCorruptState(t *testing.T) {
	tables, traces := buildTestTables(t, 1, 512, 40)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(Config{Tables: tables, Backend: BackendFile, DataDir: dir, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Train(traces, TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, StateFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Backend: BackendFile, DataDir: dir, Seed: 1}); err == nil {
		t.Fatal("corrupt state file must be rejected at reopen")
	}
}

// Version-1 state files (written before the CRC trailer existed) must still
// decode.
func TestStateVersion1StillAccepted(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 256, 5)
	s, err := Open(Config{Tables: tables, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var buf bytes.Buffer
	if err := s.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the version varint (single byte, right after the 8-byte
	// magic) to 1 and strip the v2 trailer.
	v1 := append([]byte(nil), buf.Bytes()[:buf.Len()-4]...)
	if v1[len(stateMagic)] != stateVersion {
		t.Fatalf("unexpected version byte %d", v1[len(stateMagic)])
	}
	v1[len(stateMagic)] = 1
	saved, err := decodeSavedStates(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 state rejected: %v", err)
	}
	if len(saved) != 1 || saved[0].name != tables[0].Name {
		t.Fatalf("v1 decode wrong: %+v", saved)
	}
}

func TestPersistRequiresDataDir(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 256, 5)
	s, err := Open(Config{Tables: tables, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Persist(); err == nil {
		t.Fatal("Persist on a mem-backed store must error")
	}
	if s.DataDir() != "" {
		t.Fatal("mem store reports a data dir")
	}
}
