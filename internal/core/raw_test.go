package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"bandana/internal/fp16"
)

// rawEquiv asserts that the raw fp16 view of each id decodes bit-identically
// to the float path's view of the same id.
func rawEquiv(t *testing.T, s *Store, tableIdx int, ids []uint32) {
	t.Helper()
	raws, err := s.LookupBatchRaw(tableIdx, ids)
	if err != nil {
		t.Fatal(err)
	}
	floats, err := s.LookupBatch(tableIdx, ids)
	if err != nil {
		t.Fatal(err)
	}
	dim, err := s.TableDim(tableIdx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if len(raws[i]) != dim*fp16.ByteSize {
			t.Fatalf("id %d: raw view has %d bytes, want %d", ids[i], len(raws[i]), dim*fp16.ByteSize)
		}
		dec := make([]float32, dim)
		fp16.DecodeSlice(dec, raws[i])
		for j := range dec {
			if math.Float32bits(dec[j]) != math.Float32bits(floats[i][j]) {
				t.Fatalf("id %d elem %d: raw path decodes to bits %#08x, float path %#08x",
					ids[i], j, math.Float32bits(dec[j]), math.Float32bits(floats[i][j]))
			}
		}
	}
}

func TestLookupBatchRawMatchesFloatPath(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 2048, 10)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ids := []uint32{0, 1, 7, 63, 64, 500, 2047, 7} // repeats included
	// Cold: raw lookups miss, serving fp16 straight off the block image.
	rawEquiv(t, s, 0, ids)
	// Warm: the same ids now hit cache entries that already carry raw views.
	rawEquiv(t, s, 0, ids)

	// Entries cached by the float path first: the raw view is built lazily
	// on the first raw hit.
	warm := []uint32{100, 101, 102}
	if _, err := s.LookupBatch(0, warm); err != nil {
		t.Fatal(err)
	}
	rawEquiv(t, s, 0, warm)
}

func TestLookupBatchRawCountsAndCacheSharing(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 2048, 10)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ids := []uint32{10, 11, 12, 13}
	if _, err := s.LookupBatchRaw(0, ids); err != nil {
		t.Fatal(err)
	}
	st0 := s.Stats()[0]
	if st0.Lookups != int64(len(ids)) || st0.Misses != int64(len(ids)) {
		t.Fatalf("cold raw batch: lookups=%d misses=%d, want %d/%d", st0.Lookups, st0.Misses, len(ids), len(ids))
	}
	// A raw lookup warms the cache for float lookups: all hits now.
	if _, err := s.LookupBatch(0, ids); err != nil {
		t.Fatal(err)
	}
	st1 := s.Stats()[0]
	if got := st1.Hits - st0.Hits; got != int64(len(ids)) {
		t.Fatalf("float lookups after raw warmup: %d hits, want %d", got, len(ids))
	}

	if _, err := s.LookupBatchRaw(0, []uint32{9999}); err == nil {
		t.Fatal("out-of-range id should error")
	}
	if _, err := s.LookupBatchRawByName("no-such-table", ids); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestUpdateVectorRaw(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 512, 10)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const id = 42
	dim, _ := s.TableDim(0)
	next := make([]float32, dim)
	for i := range next {
		next[i] = float32(i) * 0.25
	}
	raw := fp16.EncodeSlice(nil, next)

	// Cache the old value on both paths, then overwrite through the raw
	// write path: both read paths must serve the new bytes.
	if _, err := s.LookupBatch(0, []uint32{id}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LookupBatchRaw(0, []uint32{id}); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateVectorRaw(0, id, raw); err != nil {
		t.Fatal(err)
	}
	got, err := s.LookupBatchRaw(0, []uint32{id})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], raw) {
		t.Fatalf("raw read after raw update: got % x, want % x", got[0], raw)
	}
	vecs, err := s.LookupBatch(0, []uint32{id})
	if err != nil {
		t.Fatal(err)
	}
	for i := range next {
		if vecs[0][i] != next[i] {
			t.Fatalf("float read after raw update: elem %d = %g, want %g", i, vecs[0][i], next[i])
		}
	}

	if err := s.UpdateVectorRaw(0, id, raw[:4]); err == nil {
		t.Fatal("short raw payload should error")
	}
	if err := s.UpdateVectorRaw(0, 99999, raw); err == nil {
		t.Fatal("out-of-range id should error")
	}
}

// TestRawFloatConcurrent hammers the raw and float read paths concurrently
// over a shared working set (run with -race): the lazily built raw views
// are published under the shard lock and must never tear.
func TestRawFloatConcurrent(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 10)
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 128, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	dim, _ := s.TableDim(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			ids := make([]uint32, 16)
			for round := 0; round < 50; round++ {
				for i := range ids {
					ids[i] = (seed*31 + uint32(round*16+i)) % 1024
				}
				if seed%2 == 0 {
					raws, err := s.LookupBatchRaw(0, ids)
					if err != nil {
						t.Error(err)
						return
					}
					for _, r := range raws {
						if len(r) != dim*fp16.ByteSize {
							t.Errorf("raw view has %d bytes, want %d", len(r), dim*fp16.ByteSize)
							return
						}
					}
				} else {
					if _, err := s.LookupBatch(0, ids); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(uint32(w))
	}
	wg.Wait()
}
