package core

import (
	"bandana/internal/metrics"
	"bandana/internal/nvm"
)

// TableStats is a snapshot of one table's serving counters.
type TableStats struct {
	Name         string
	Lookups      int64
	Hits         int64
	Misses       int64
	HitRate      float64
	BlockReads   int64
	PrefetchAdds int64
	PrefetchHits int64
	CacheVectors int
	CacheUsed    int
	Threshold    uint32
	Prefetching  bool
	// EffectiveBandwidth is the fraction of NVM-read bytes delivered to the
	// application: lookups served from NVM reads (misses + prefetch hits)
	// times the vector size over block reads times the block size.
	EffectiveBandwidth float64
	// Latency summarises the NVM block read latency observed by this
	// table's misses (microseconds).
	Latency metrics.Snapshot
}

// Stats returns per-table serving statistics.
func (s *Store) Stats() []TableStats {
	out := make([]TableStats, len(s.tables))
	for i, st := range s.tables {
		st.mu.Lock()
		ts := TableStats{
			Name:         st.name,
			Lookups:      st.lookups.Value(),
			Hits:         st.hits.Value(),
			Misses:       st.misses.Value(),
			BlockReads:   st.blockReads.Value(),
			PrefetchAdds: st.prefetchAdds.Value(),
			PrefetchHits: st.prefetchHits.Value(),
			CacheVectors: st.cacheCap,
			CacheUsed:    st.cache.Len(),
			Threshold:    st.threshold,
			Prefetching:  st.prefetch,
			Latency:      st.lookupLatency.Snapshot(),
		}
		if ts.Lookups > 0 {
			ts.HitRate = float64(ts.Hits) / float64(ts.Lookups)
		}
		if ts.BlockReads > 0 {
			useful := float64(ts.Misses+ts.PrefetchHits) * float64(st.vecBytes)
			ts.EffectiveBandwidth = useful / (float64(ts.BlockReads) * float64(nvm.BlockSize))
		}
		st.mu.Unlock()
		out[i] = ts
	}
	return out
}

// ResetStats clears all per-table counters (layouts, thresholds and cache
// contents are preserved).
func (s *Store) ResetStats() {
	for _, st := range s.tables {
		st.mu.Lock()
		st.lookups.Reset()
		st.hits.Reset()
		st.misses.Reset()
		st.blockReads.Reset()
		st.prefetchAdds.Reset()
		st.prefetchHits.Reset()
		st.lookupLatency.Reset()
		st.mu.Unlock()
	}
}

// DeviceStats returns the underlying NVM device counters.
func (s *Store) DeviceStats() nvm.Stats { return s.device.Stats() }
