package core

import (
	"bandana/internal/metrics"
	"bandana/internal/nvm"
)

// TableStats is a snapshot of one table's serving counters.
type TableStats struct {
	Name    string
	Lookups int64
	Hits    int64
	// DeltaHits is the subset of Hits served from the delta overlay (updated
	// vectors not yet compacted into the block image). Always 0 without an
	// update log.
	DeltaHits int64
	// OverlayEntries is the number of vectors currently overlaid.
	OverlayEntries int
	Misses         int64
	HitRate        float64
	BlockReads     int64
	// CoalescedReads counts misses served by another miss's device read
	// (I/O scheduler singleflight): the lookup paid a miss but the device
	// did not pay a block read. Always 0 with the scheduler off.
	CoalescedReads int64
	PrefetchAdds   int64
	PrefetchHits   int64
	CacheVectors   int
	CacheUsed      int
	CacheShards    int
	// CacheEngine names the cache representation serving this table (see
	// Config.CacheEngine); the fields below are its byte accounting. The
	// arena engine reports exact resident fp16 payload bytes, allocated slab
	// bytes and their ratio; the LRU engine reports decoded payload bytes
	// with no arenas (ArenaBytes and Slabs stay 0).
	CacheEngine           string
	CacheBytesResident    int64
	CacheArenaBytes       int64
	CacheArenaUtilization float64
	CacheSlabs            int
	Threshold             uint32
	Prefetching           bool
	// Policy names the admission policy currently serving prefetches
	// (empty when prefetching is off).
	Policy string
	// EffectiveBandwidth is the fraction of NVM-read bytes delivered to the
	// application: lookups served from NVM reads (misses + prefetch hits)
	// times the vector size over block reads times the block size.
	EffectiveBandwidth float64
	// Latency summarises the NVM block read latency observed by this
	// table's misses (microseconds) — the device-service component of the
	// stage decomposition below.
	Latency metrics.Snapshot
	// Stage latency decomposition (all microseconds). ProbeLatency is the
	// DRAM cache/overlay probe, timed on a sampled subset of lookups (~1/64,
	// always under a slow-request trace). QueueWaitLatency is time miss
	// reads spent queued in the I/O scheduler before dispatch (empty with
	// the scheduler off). DecodeLatency is requested-vector fp16 decode
	// time (prefetch admission decodes excluded).
	ProbeLatency     metrics.Snapshot
	QueueWaitLatency metrics.Snapshot
	DecodeLatency    metrics.Snapshot
}

// Stats returns per-table serving statistics.
func (s *Store) Stats() []TableStats {
	out := make([]TableStats, len(s.tables))
	for i, st := range s.tables {
		state := st.loadState()
		ts := TableStats{
			Name:             st.name,
			Lookups:          st.lookups.Value(),
			Hits:             st.hits.Value(),
			DeltaHits:        st.deltaHits.Value(),
			Misses:           st.misses.Value(),
			BlockReads:       st.blockReads.Value(),
			CoalescedReads:   st.coalescedReads.Value(),
			PrefetchAdds:     st.prefetchAdds.Value(),
			PrefetchHits:     st.prefetchHits.Value(),
			CacheVectors:     state.cacheCap,
			CacheUsed:        state.cache.Len(),
			CacheShards:      state.cache.NumShards(),
			Threshold:        state.threshold,
			Prefetching:      state.prefetch,
			Latency:          st.lookupLatency.Snapshot(),
			ProbeLatency:     st.probeLatency.Snapshot(),
			QueueWaitLatency: st.queueWaitLatency.Snapshot(),
			DecodeLatency:    st.decodeLatency.Snapshot(),
		}
		es := state.cache.EngineStats()
		ts.CacheEngine = es.Engine
		ts.CacheBytesResident = es.BytesResident
		ts.CacheArenaBytes = es.ArenaBytes
		ts.CacheArenaUtilization = es.ArenaUtilization
		ts.CacheSlabs = es.Slabs
		if st.overlay != nil {
			ts.OverlayEntries = st.overlay.size()
		}
		if state.policy != nil {
			ts.Policy = state.policy.Name()
		}
		if ts.Lookups > 0 {
			ts.HitRate = float64(ts.Hits) / float64(ts.Lookups)
		}
		if ts.BlockReads > 0 {
			useful := float64(ts.Misses+ts.PrefetchHits) * float64(st.vecBytes)
			ts.EffectiveBandwidth = useful / (float64(ts.BlockReads) * float64(nvm.BlockSize))
		}
		out[i] = ts
	}
	return out
}

// ResetStats clears all per-table counters (layouts, thresholds and cache
// contents are preserved). Counters are atomic, so no lock is needed; a
// reset concurrent with serving simply starts counting from the reset
// point.
func (s *Store) ResetStats() {
	for _, st := range s.tables {
		st.lookups.Reset()
		st.hits.Reset()
		st.deltaHits.Reset()
		st.misses.Reset()
		st.blockReads.Reset()
		st.coalescedReads.Reset()
		st.prefetchAdds.Reset()
		st.prefetchHits.Reset()
		st.lookupLatency.Reset()
		st.probeLatency.Reset()
		st.queueWaitLatency.Reset()
		st.decodeLatency.Reset()
	}
}

// DeviceStats returns the underlying NVM device counters.
func (s *Store) DeviceStats() nvm.Stats { return s.device.Stats() }
