package core

import (
	"sync"
	"testing"

	"bandana/internal/table"
	"bandana/internal/trace"
)

// stressStore builds a trained two-table store suitable for hammering from
// many goroutines.
func stressStore(t *testing.T) (*Store, []*trace.Trace) {
	t.Helper()
	profiles := []trace.Profile{
		{Name: "stress1", NumVectors: 4096, AvgLookups: 16, CompulsoryMissFrac: 0.05,
			Locality: 0.8, CommunitySize: 64, ReuseSkew: 2, Seed: 11},
		{Name: "stress2", NumVectors: 2048, AvgLookups: 16, CompulsoryMissFrac: 0.05,
			Locality: 0.8, CommunitySize: 64, ReuseSkew: 2, Seed: 22},
	}
	workload := trace.GenerateWorkload(profiles, 300)
	tables := make([]*table.Table, len(profiles))
	for i, p := range profiles {
		g := table.Generate(p.Name, table.GenerateOptions{
			NumVectors:  p.NumVectors,
			Dim:         32,
			NumClusters: p.NumVectors / 64,
			Seed:        int64(i),
			Assignments: workload.Communities[i],
		})
		tables[i] = g.Table
	}
	s, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: 800, Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if _, err := s.Train(workload.Traces, TrainOptions{SHPIterations: 2, MiniCacheSampling: 0.5}); err != nil {
		t.Fatal(err)
	}
	return s, workload.Traces
}

// TestLookupStress hammers Lookup, LookupBatch and UpdateVector on the same
// tables from many goroutines and checks that the atomic serving counters
// stay consistent (hits + misses == lookups). Run with -race to exercise the
// sharded cache's locking.
func TestLookupStress(t *testing.T) {
	s, traces := stressStore(t)
	s.ResetStats()

	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	var totalLookups [2]int64
	var mu sync.Mutex

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local [2]int64
			for i := 0; i < iters; i++ {
				ti := (w + i) % 2
				tr := traces[ti]
				q := tr.Queries[(w*iters+i)%len(tr.Queries)]
				switch i % 3 {
				case 0:
					for _, id := range q {
						if _, err := s.Lookup(ti, id); err != nil {
							t.Errorf("Lookup: %v", err)
							return
						}
					}
					local[ti] += int64(len(q))
				case 1:
					vecs, err := s.LookupBatch(ti, q)
					if err != nil {
						t.Errorf("LookupBatch: %v", err)
						return
					}
					if len(vecs) != len(q) {
						t.Errorf("LookupBatch returned %d vectors for %d ids", len(vecs), len(q))
						return
					}
					local[ti] += int64(len(q))
				case 2:
					id := q[0]
					vec := make([]float32, 32)
					vec[0] = float32(w*iters + i)
					if err := s.UpdateVector(ti, id, vec); err != nil {
						t.Errorf("UpdateVector: %v", err)
						return
					}
					got, err := s.Lookup(ti, id)
					if err != nil {
						t.Errorf("Lookup after update: %v", err)
						return
					}
					if len(got) != 32 {
						t.Errorf("vector has %d elements, want 32", len(got))
						return
					}
					local[ti]++
				}
			}
			mu.Lock()
			totalLookups[0] += local[0]
			totalLookups[1] += local[1]
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for ti, st := range s.Stats() {
		if st.Lookups != totalLookups[ti] {
			t.Errorf("table %d: Lookups = %d, want %d", ti, st.Lookups, totalLookups[ti])
		}
		if st.Hits+st.Misses != st.Lookups {
			t.Errorf("table %d: hits %d + misses %d != lookups %d", ti, st.Hits, st.Misses, st.Lookups)
		}
		if st.CacheUsed > st.CacheVectors {
			t.Errorf("table %d: cache holds %d vectors, capacity %d (%d shards)",
				ti, st.CacheUsed, st.CacheVectors, st.CacheShards)
		}
	}
}

// TestConcurrentUpdateVisibility checks that after a racing mix of updates
// and lookups settles, a final lookup observes the last written value (no
// stale block decode is left in the cache).
func TestConcurrentUpdateVisibility(t *testing.T) {
	s, _ := stressStore(t)
	const id = uint32(42)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if w%2 == 0 {
					vec := make([]float32, 32)
					vec[0] = float32(w*1000 + i)
					if err := s.UpdateVector(0, id, vec); err != nil {
						t.Errorf("UpdateVector: %v", err)
						return
					}
				} else {
					if _, err := s.Lookup(0, id); err != nil {
						t.Errorf("Lookup: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	final := make([]float32, 32)
	final[0] = 2048
	if err := s.UpdateVector(0, id, final); err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup(0, id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2048 {
		t.Fatalf("after final update, vector[0] = %v, want 2048", got[0])
	}
	// A second lookup must serve the same value from the cache.
	got, err = s.Lookup(0, id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2048 {
		t.Fatalf("cached vector[0] = %v, want 2048", got[0])
	}
}

// TestTrainWhileServing retrains a table while lookups hammer it and checks
// that every returned vector matches the source table: the rewrite lock
// must prevent a miss from decoding a block with the wrong layout
// (publish-then-rewrite would otherwise hand out another vector's bytes).
func TestTrainWhileServing(t *testing.T) {
	p := trace.Profile{Name: "live", NumVectors: 2048, AvgLookups: 16, CompulsoryMissFrac: 0.05,
		Locality: 0.8, CommunitySize: 64, ReuseSkew: 2, Seed: 5}
	workload := trace.GenerateWorkload([]trace.Profile{p}, 200)
	g := table.Generate(p.Name, table.GenerateOptions{
		NumVectors: p.NumVectors, Dim: 32, NumClusters: 32, Seed: 1,
		Assignments: workload.Communities[0],
	})
	s, err := Open(Config{Tables: []*table.Table{g.Table}, DRAMBudgetVectors: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := uint32((i * 37) % p.NumVectors)
				i++
				got, err := s.Lookup(0, id)
				if err != nil {
					t.Errorf("Lookup(%d): %v", id, err)
					return
				}
				want, err := g.Table.Vector(id)
				if err != nil {
					t.Errorf("Vector(%d): %v", id, err)
					return
				}
				for d := range want {
					if got[d] != want[d] {
						t.Errorf("vector %d element %d = %v, want %v (stale-layout decode)", id, d, got[d], want[d])
						return
					}
				}
			}
		}(w)
	}

	// Retrain (layout rewrite + threshold tuning) several times under load.
	for round := 0; round < 3; round++ {
		if _, err := s.Train([]*trace.Trace{workload.Traces[0]},
			TrainOptions{SHPIterations: 2, MiniCacheSampling: 0.5}); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestOpenZeroTables ensures Open rejects an empty config with an error
// instead of dividing the DRAM budget by zero.
func TestOpenZeroTables(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with no tables succeeded, want error")
	}
	if _, err := Open(Config{Tables: []*table.Table{}, DRAMBudgetVectors: 100}); err == nil {
		t.Fatal("Open with empty table slice succeeded, want error")
	}
}

// TestSetAdmissionPolicy verifies that installing and clearing a policy
// toggles prefetching.
func TestSetAdmissionPolicy(t *testing.T) {
	s, _ := stressStore(t)
	st := s.Stats()[0]
	if !st.Prefetching || st.Policy == "" {
		t.Fatalf("trained table should be prefetching with a named policy, got %+v", st)
	}
	if err := s.SetAdmissionPolicy(0, nil); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats()[0]; st.Prefetching || st.Policy != "" {
		t.Fatalf("clearing the policy should disable prefetching, got %+v", st)
	}
	if err := s.SetAdmissionPolicy(99, nil); err == nil {
		t.Fatal("SetAdmissionPolicy on bad index succeeded, want error")
	}
}
