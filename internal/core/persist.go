package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"bandana/internal/cache"
	"bandana/internal/layout"
)

// Training a store (SHP partitioning + threshold tuning) is expensive and in
// production happens offline, on a schedule decoupled from serving. SaveState
// and LoadState persist the trained state — per-table placement order, access
// counts, admission threshold and cache allocation — so that a freshly opened
// store can adopt a previous training run without repeating it.

const stateMagic = "BNDSTATE"

// stateVersion 2 appended a CRC-32C trailer over the whole payload so a
// corrupted-but-decodable state file (e.g. bit rot flipping a varint into
// another valid permutation) fails loudly at load instead of silently
// serving wrong vectors after a reopen.
const stateVersion = 2

// SaveState serialises the store's trained state (placements, access counts,
// thresholds, cache allocations). Embedding values are not included: they
// belong to the model checkpoint, not to Bandana. Custom admission policies
// installed with SetAdmissionPolicy are not persisted either — only the
// threshold policy's inputs (counts + threshold) survive a round trip;
// LoadState disables prefetching when they are absent.
func (s *Store) SaveState(w io.Writer) error {
	h := crc32.New(manifestCRCTable)
	bw := bufio.NewWriterSize(io.MultiWriter(w, h), 1<<20)
	buf := make([]byte, binary.MaxVarintLen64)
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(str string) error {
		if err := writeUvarint(uint64(len(str))); err != nil {
			return err
		}
		_, err := bw.WriteString(str)
		return err
	}
	if _, err := bw.WriteString(stateMagic); err != nil {
		return err
	}
	if err := writeUvarint(stateVersion); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(s.tables))); err != nil {
		return err
	}
	for _, st := range s.tables {
		state := st.loadState()
		name := st.name
		order := state.layout.Order()
		counts := state.counts
		threshold := state.threshold
		prefetch := state.prefetch
		cacheCap := state.cacheCap

		if err := writeString(name); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(order))); err != nil {
			return err
		}
		for _, id := range order {
			if err := writeUvarint(uint64(id)); err != nil {
				return err
			}
		}
		if err := writeUvarint(uint64(len(counts))); err != nil {
			return err
		}
		for _, c := range counts {
			if err := writeUvarint(uint64(c)); err != nil {
				return err
			}
		}
		if err := writeUvarint(uint64(threshold)); err != nil {
			return err
		}
		var pf uint64
		if prefetch {
			pf = 1
		}
		if err := writeUvarint(pf); err != nil {
			return err
		}
		if err := writeUvarint(uint64(cacheCap)); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// CRC-32C trailer over the whole payload, written past the hashed
	// stream itself.
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], h.Sum32())
	_, err := w.Write(crc[:])
	return err
}

// crcByteReader hashes exactly the bytes the decoder consumes (a bufio
// reader would read ahead and hash the trailer too).
type crcByteReader struct {
	br *bufio.Reader
	h  hash.Hash32
}

func (c *crcByteReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.h.Write(p[:n])
	return n, err
}

func (c *crcByteReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.h.Write([]byte{b})
	}
	return b, err
}

// savedTable is one table's decoded trained state.
type savedTable struct {
	name      string
	order     []uint32
	counts    []uint32
	threshold uint32
	prefetch  bool
	cacheCap  int
}

// decodeSavedStates parses a SaveState stream into per-table entries without
// reference to any live store (the caller validates geometry).
func decodeSavedStates(r io.Reader) ([]savedTable, error) {
	raw := bufio.NewReaderSize(r, 1<<20)
	br := &crcByteReader{br: raw, h: crc32.New(manifestCRCTable)}
	magic := make([]byte, len(stateMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: read state header: %w", err)
	}
	if string(magic) != stateMagic {
		return nil, fmt.Errorf("core: bad state magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	// Version 1 files (no CRC trailer) are still accepted so state dumps
	// written before the trailer was added keep loading.
	if version != 1 && version != stateVersion {
		return nil, fmt.Errorf("core: unsupported state version %d", version)
	}
	numTables, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if numTables > 1<<16 {
		return nil, fmt.Errorf("core: implausible table count %d", numTables)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<16 {
			return "", fmt.Errorf("core: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	saved := make([]savedTable, 0, numTables)
	for ti := 0; ti < int(numTables); ti++ {
		var sv savedTable
		sv.name, err = readString()
		if err != nil {
			return nil, err
		}
		orderLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if orderLen > 1<<32 {
			return nil, fmt.Errorf("core: table %q: implausible order length %d", sv.name, orderLen)
		}
		// Length claims from the wire are untrusted: cap the up-front
		// allocation and let append grow the real thing, so a corrupt file
		// fails at EOF instead of forcing a multi-GiB allocation first.
		sv.order = make([]uint32, 0, min(orderLen, 1<<16))
		for j := uint64(0); j < orderLen; j++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			sv.order = append(sv.order, uint32(v))
		}
		countsLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if countsLen > orderLen {
			return nil, fmt.Errorf("core: table %q: implausible counts length %d", sv.name, countsLen)
		}
		sv.counts = make([]uint32, 0, min(countsLen, 1<<16))
		for j := uint64(0); j < countsLen; j++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			sv.counts = append(sv.counts, uint32(v))
		}
		threshold, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		sv.threshold = uint32(threshold)
		prefetch, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		sv.prefetch = prefetch == 1
		cacheCap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		sv.cacheCap = int(cacheCap)
		saved = append(saved, sv)
	}
	// The payload hash must match the trailer (read past the hashed
	// stream, straight from the underlying reader). v1 files predate the
	// trailer.
	if version >= 2 {
		sum := br.h.Sum32()
		var crc [4]byte
		if _, err := io.ReadFull(raw, crc[:]); err != nil {
			return nil, fmt.Errorf("core: read state checksum: %w", err)
		}
		if binary.LittleEndian.Uint32(crc[:]) != sum {
			return nil, fmt.Errorf("core: state checksum mismatch (file corrupt)")
		}
	}
	return saved, nil
}

// savedStateMutator returns the tableState mutation that installs sv's
// trained fields over layout l.
func savedStateMutator(l *layout.Layout, sv savedTable) func(*tableState) {
	return func(ts *tableState) {
		ts.layout = l
		ts.counts = sv.counts
		ts.threshold = sv.threshold
		// Only the threshold policy is persistable (the state format stores
		// counts + threshold, not arbitrary policy objects). A saved state
		// with prefetching on but no counts — e.g. a store that was running
		// a custom policy installed via SetAdmissionPolicy — would reload as
		// a policy that never admits anything, so disable prefetching
		// instead of installing an inert one.
		ts.prefetch = sv.prefetch && len(sv.counts) > 0
		if ts.prefetch {
			ts.policy = cache.ThresholdAdmit{Counts: sv.counts, Threshold: sv.threshold}
		} else {
			ts.policy = nil
		}
	}
}

// LoadState restores state produced by SaveState into a store opened over
// the same tables (matched by name and size). It installs the saved
// placement (rewriting the NVM blocks), access counts, thresholds and cache
// allocations, and enables prefetching where the saved state had it enabled.
// A file-backed store persists the restored state to its data dir.
func (s *Store) LoadState(r io.Reader) error {
	if err := s.checkWritable(); err != nil {
		return err
	}
	saved, err := decodeSavedStates(r)
	if err != nil {
		return err
	}
	if len(saved) != len(s.tables) {
		return fmt.Errorf("core: state has %d tables, store has %d", len(saved), len(s.tables))
	}
	// Validate the whole state against the store BEFORE mutating anything:
	// once the rewrite marker is set a failure leaves the data dir flagged
	// as interrupted, which must only happen when blocks may actually have
	// been rewritten.
	layouts := make([]*layout.Layout, len(saved))
	sts := make([]*storeTable, len(saved))
	for i, sv := range saved {
		idx, ok := s.byName[sv.name]
		if !ok {
			return fmt.Errorf("core: state references unknown table %q", sv.name)
		}
		st := s.tables[idx]
		if len(sv.order) != st.src.NumVectors() {
			return fmt.Errorf("core: table %q: state has %d vectors, table has %d",
				sv.name, len(sv.order), st.src.NumVectors())
		}
		l, err := layout.FromOrder(sv.order, st.blockVectors)
		if err != nil {
			return fmt.Errorf("core: table %q: %w", sv.name, err)
		}
		layouts[i] = l
		sts[i] = st
	}
	// Like Train, this rewrites whole tables: serialize against other
	// whole-store mutators and flag the data dir until the blocks and the
	// matching state file are both durable.
	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()
	if err := s.markDirMutation(); err != nil {
		return err
	}
	for i, sv := range saved {
		if err := s.rewriteTable(sts[i], savedStateMutator(layouts[i], sv)); err != nil {
			return err
		}
		if sv.cacheCap > 0 {
			sts[i].resizeCache(sv.cacheCap)
		}
	}
	if s.dataDir != "" {
		if err := s.Persist(); err != nil {
			return err
		}
		if err := s.clearDirMutation(); err != nil {
			return err
		}
	}
	s.noteStructuralMutation()
	return nil
}
