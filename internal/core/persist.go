package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"bandana/internal/cache"
	"bandana/internal/layout"
)

// Training a store (SHP partitioning + threshold tuning) is expensive and in
// production happens offline, on a schedule decoupled from serving. SaveState
// and LoadState persist the trained state — per-table placement order, access
// counts, admission threshold and cache allocation — so that a freshly opened
// store can adopt a previous training run without repeating it.

const stateMagic = "BNDSTATE"
const stateVersion = 1

// SaveState serialises the store's trained state (placements, access counts,
// thresholds, cache allocations). Embedding values are not included: they
// belong to the model checkpoint, not to Bandana. Custom admission policies
// installed with SetAdmissionPolicy are not persisted either — only the
// threshold policy's inputs (counts + threshold) survive a round trip;
// LoadState disables prefetching when they are absent.
func (s *Store) SaveState(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	buf := make([]byte, binary.MaxVarintLen64)
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(str string) error {
		if err := writeUvarint(uint64(len(str))); err != nil {
			return err
		}
		_, err := bw.WriteString(str)
		return err
	}
	if _, err := bw.WriteString(stateMagic); err != nil {
		return err
	}
	if err := writeUvarint(stateVersion); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(s.tables))); err != nil {
		return err
	}
	for _, st := range s.tables {
		state := st.loadState()
		name := st.name
		order := state.layout.Order()
		counts := state.counts
		threshold := state.threshold
		prefetch := state.prefetch
		cacheCap := state.cacheCap

		if err := writeString(name); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(order))); err != nil {
			return err
		}
		for _, id := range order {
			if err := writeUvarint(uint64(id)); err != nil {
				return err
			}
		}
		if err := writeUvarint(uint64(len(counts))); err != nil {
			return err
		}
		for _, c := range counts {
			if err := writeUvarint(uint64(c)); err != nil {
				return err
			}
		}
		if err := writeUvarint(uint64(threshold)); err != nil {
			return err
		}
		var pf uint64
		if prefetch {
			pf = 1
		}
		if err := writeUvarint(pf); err != nil {
			return err
		}
		if err := writeUvarint(uint64(cacheCap)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadState restores state produced by SaveState into a store opened over
// the same tables (matched by name and size). It installs the saved
// placement (rewriting the NVM blocks), access counts, thresholds and cache
// allocations, and enables prefetching where the saved state had it enabled.
func (s *Store) LoadState(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(stateMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("core: read state header: %w", err)
	}
	if string(magic) != stateMagic {
		return fmt.Errorf("core: bad state magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if version != stateVersion {
		return fmt.Errorf("core: unsupported state version %d", version)
	}
	numTables, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if int(numTables) != len(s.tables) {
		return fmt.Errorf("core: state has %d tables, store has %d", numTables, len(s.tables))
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<16 {
			return "", fmt.Errorf("core: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	for ti := 0; ti < int(numTables); ti++ {
		name, err := readString()
		if err != nil {
			return err
		}
		idx, ok := s.byName[name]
		if !ok {
			return fmt.Errorf("core: state references unknown table %q", name)
		}
		st := s.tables[idx]

		orderLen, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if int(orderLen) != st.src.NumVectors() {
			return fmt.Errorf("core: table %q: state has %d vectors, table has %d",
				name, orderLen, st.src.NumVectors())
		}
		order := make([]uint32, orderLen)
		for i := range order {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			order[i] = uint32(v)
		}
		countsLen, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if countsLen > orderLen {
			return fmt.Errorf("core: table %q: implausible counts length %d", name, countsLen)
		}
		counts := make([]uint32, countsLen)
		for i := range counts {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			counts[i] = uint32(v)
		}
		threshold, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		prefetch, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		cacheCap, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}

		l, err := layout.FromOrder(order, st.blockVectors)
		if err != nil {
			return fmt.Errorf("core: table %q: %w", name, err)
		}
		if err := s.rewriteTable(st, func(ts *tableState) {
			ts.layout = l
			ts.counts = counts
			ts.threshold = uint32(threshold)
			// Only the threshold policy is persistable (the state format
			// stores counts + threshold, not arbitrary policy objects). A
			// saved state with prefetching on but no counts — e.g. a store
			// that was running a custom policy installed via
			// SetAdmissionPolicy — would reload as a policy that never
			// admits anything, so disable prefetching instead of
			// installing an inert one.
			ts.prefetch = prefetch == 1 && len(counts) > 0
			if ts.prefetch {
				ts.policy = cache.ThresholdAdmit{Counts: counts, Threshold: uint32(threshold)}
			} else {
				ts.policy = nil
			}
		}); err != nil {
			return err
		}
		if int(cacheCap) > 0 {
			st.resizeCache(int(cacheCap))
		}
	}
	return nil
}
