package core

import (
	"testing"
	"time"

	"bandana/internal/table"
	"bandana/internal/trace"
)

// driftTestTables builds a two-table drift workload with very different
// cacheability, so the DRAM allocator has a real decision to make: table
// "hot" is small, local and skewed (a small cache captures most of it),
// table "cold" is large with weak locality (extra DRAM buys little).
func driftTestTables(queries, rotateEvery int) ([]*table.Table, []*trace.Trace) {
	profiles := []trace.Profile{
		{
			Name: "hot", NumVectors: 4096, AvgLookups: 25,
			CompulsoryMissFrac: 0.02, Locality: 0.95, CommunitySize: 64,
			ReuseSkew: 1.0, Seed: 11, HotSetRotation: rotateEvery,
		},
		{
			Name: "cold", NumVectors: 8192, AvgLookups: 25,
			CompulsoryMissFrac: 0.60, Locality: 0.10, CommunitySize: 64,
			ReuseSkew: 1.0, Seed: 12, HotSetRotation: rotateEvery,
		},
	}
	tables := make([]*table.Table, len(profiles))
	traces := make([]*trace.Trace, len(profiles))
	for i, p := range profiles {
		traces[i] = trace.GenerateTable(p, queries)
		tables[i] = table.Generate(p.Name, table.GenerateOptions{
			NumVectors:  p.NumVectors,
			Dim:         64,
			NumClusters: p.NumVectors / 64,
			Seed:        int64(i),
			Assignments: trace.CommunityAssignment(p),
		}).Table
	}
	return tables, traces
}

func servePhase(t *testing.T, s *Store, traces []*trace.Trace, from, to int) {
	t.Helper()
	for ti, tr := range traces {
		for q := from; q < to && q < len(tr.Queries); q++ {
			if len(tr.Queries[q]) == 0 {
				continue
			}
			if _, err := s.LookupBatch(ti, tr.Queries[q]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func aggregateHitRate(s *Store) (float64, int64) {
	var lookups, hits int64
	for _, st := range s.Stats() {
		lookups += st.Lookups
		hits += st.Hits
	}
	if lookups == 0 {
		return 0, 0
	}
	return float64(hits) / float64(lookups), lookups
}

// TestAdaptationBeatsStaticEvenSplitOnDrift is the acceptance scenario: a
// server started UNTRAINED on a drifting workload converges without a
// restart — after a few adaptation epochs its aggregate hit ratio is
// strictly better than the static even-split baseline serving the identical
// stream.
func TestAdaptationBeatsStaticEvenSplitOnDrift(t *testing.T) {
	const (
		epochQ    = 150 // queries served between adaptation epochs
		epochs    = 8
		rotate    = 2 * epochQ // drift phase length (the hot set rotates every 2 epochs)
		warmupEps = 4
		budget    = 600
	)
	tables, traces := driftTestTables(epochQ*epochs, rotate)
	tables2, _ := driftTestTables(epochQ*epochs, rotate) // fresh copies for the baseline store

	adaptive, err := Open(testBackendConfig(t, Config{Tables: tables, DRAMBudgetVectors: budget, Seed: 5}))
	if err != nil {
		t.Fatal(err)
	}
	defer adaptive.Close()
	static, err := Open(Config{Tables: tables2, DRAMBudgetVectors: budget, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer static.Close()

	if err := adaptive.StartAdaptation(AdaptOptions{
		MinQueries:      32,
		RelayoutEvery:   2,
		RelayoutMinGain: 0.02,
		SHPIterations:   8,
	}); err != nil {
		t.Fatal(err)
	}

	for epoch := 0; epoch < epochs; epoch++ {
		servePhase(t, adaptive, traces, epoch*epochQ, (epoch+1)*epochQ)
		servePhase(t, static, traces, epoch*epochQ, (epoch+1)*epochQ)
		if _, err := adaptive.AdaptNow(); err != nil {
			t.Fatal(err)
		}
		if epoch == warmupEps-1 {
			// Converged enough: measure both stores on the remaining
			// (still drifting) epochs only.
			adaptive.ResetStats()
			static.ResetStats()
		}
	}

	adaptRate, adaptN := aggregateHitRate(adaptive)
	staticRate, staticN := aggregateHitRate(static)
	if adaptN == 0 || staticN == 0 {
		t.Fatal("no post-warmup lookups measured")
	}
	t.Logf("post-warmup aggregate hit ratio: adaptive %.4f (%d lookups) vs static even-split %.4f (%d lookups)",
		adaptRate, adaptN, staticRate, staticN)
	if adaptRate <= staticRate {
		t.Fatalf("adaptation did not beat the static even split: %.4f <= %.4f", adaptRate, staticRate)
	}

	stats := adaptive.AdaptationStats()
	if stats.EpochsCompleted != epochs {
		t.Fatalf("EpochsCompleted = %d, want %d", stats.EpochsCompleted, epochs)
	}
	// The allocator should have moved DRAM toward the cacheable table.
	var hotCap, coldCap int
	for _, ts := range stats.Tables {
		switch ts.Name {
		case "hot":
			hotCap = ts.CacheVectors
		case "cold":
			coldCap = ts.CacheVectors
		}
	}
	if hotCap <= coldCap {
		t.Errorf("expected the hot table to win DRAM: hot=%d cold=%d", hotCap, coldCap)
	}
}

func TestAdaptNowRequiresStart(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 10)
	s, err := Open(Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.AdaptNow(); err == nil {
		t.Fatal("AdaptNow without StartAdaptation should error")
	}
	st := s.AdaptationStats()
	if st.Enabled {
		t.Fatal("AdaptationStats.Enabled should be false before StartAdaptation")
	}
}

func TestStartAdaptationLifecycle(t *testing.T) {
	tables, traces := buildTestTables(t, 2, 1024, 120)
	s, err := Open(Config{Tables: tables, DRAMBudgetVectors: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.StartAdaptation(AdaptOptions{
		MinQueries:      16,
		RelayoutEvery:   1,
		RelayoutMinGain: 0.01,
		MinPrefetchGain: 0.01,
		SHPIterations:   8,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.StartAdaptation(AdaptOptions{}); err == nil {
		t.Fatal("double StartAdaptation should error")
	}
	if err := s.StartAdaptation(AdaptOptions{RelayoutStrategy: "bogus"}); err == nil {
		t.Fatal("bad relayout strategy should error")
	}

	// Two epochs: the first re-partitions the tables, the second tunes
	// thresholds against the partitioned layout (where prefetching pays).
	var rep *AdaptEpochReport
	var err2 error
	for e := 0; e < 2; e++ {
		servePhase(t, s, traces, 0, 120)
		rep, err2 = s.AdaptNow()
		if err2 != nil {
			t.Fatal(err2)
		}
	}
	for _, tr := range rep.Tables {
		if !tr.Adapted {
			t.Fatalf("table %s not adapted despite %d recorded queries", tr.Name, tr.RecordedQueries)
		}
		if tr.CacheVectors <= 0 {
			t.Fatalf("table %s: no cache allocation reported", tr.Name)
		}
	}
	stats := s.AdaptationStats()
	if !stats.Enabled || stats.Background {
		t.Fatalf("manual-mode stats: Enabled=%v Background=%v", stats.Enabled, stats.Background)
	}
	if stats.EpochsCompleted != 2 || stats.LastEpochDuration <= 0 {
		t.Fatalf("epoch accounting: %d epochs, %v duration", stats.EpochsCompleted, stats.LastEpochDuration)
	}

	// Prefetching must now be live with the tuned threshold policy.
	found := false
	for _, ts := range s.Stats() {
		if ts.Prefetching && ts.Policy == "threshold-admit" {
			found = true
		}
	}
	if !found {
		t.Fatal("no table ended up with a live threshold-admit policy")
	}

	s.StopAdaptation()
	s.StopAdaptation() // idempotent
	if s.AdaptationStats().Enabled {
		t.Fatal("stats still enabled after stop")
	}
	if _, err := s.AdaptNow(); err == nil {
		t.Fatal("AdaptNow after StopAdaptation should error")
	}
	// Restartable.
	if err := s.StartAdaptation(AdaptOptions{MinQueries: 16}); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundAdaptationLoop(t *testing.T) {
	tables, traces := buildTestTables(t, 1, 1024, 200)
	s, err := Open(Config{Tables: tables, DRAMBudgetVectors: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartAdaptation(AdaptOptions{Interval: 10 * time.Millisecond, MinQueries: 16}); err != nil {
		t.Fatal(err)
	}
	if !s.AdaptationStats().Background {
		t.Fatal("background loop not reported")
	}
	servePhase(t, s, traces, 0, 200)
	deadline := time.Now().Add(5 * time.Second)
	for s.AdaptationStats().EpochsCompleted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never completed an epoch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.StopAdaptation()
	if got := s.AdaptationStats(); got.Enabled {
		t.Fatalf("adaptation still enabled after stop: %+v", got)
	}
}

// TestAdaptationResizeKeepsWorkingSet verifies live rebalancing does not
// drop the cache: after an epoch shrinks a table's cache, previously hot
// vectors still hit.
func TestAdaptationResizeKeepsWorkingSet(t *testing.T) {
	tables, traces := driftTestTables(400, 0)
	s, err := Open(Config{Tables: tables, DRAMBudgetVectors: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartAdaptation(AdaptOptions{MinQueries: 32}); err != nil {
		t.Fatal(err)
	}
	servePhase(t, s, traces, 0, 400)
	before := s.Stats()
	if _, err := s.AdaptNow(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	for i := range after {
		if after[i].CacheVectors < before[i].CacheVectors && after[i].CacheUsed == 0 {
			t.Fatalf("table %s: shrink emptied the cache (incremental eviction expected)", after[i].Name)
		}
	}
}

// TestLookupHitZeroAllocWithRecorder pins the serving-path cost of
// recording: a cache-hit Lookup must stay allocation-free while the
// adaptation recorder is installed (Record1 keeps the one-ID buffer on the
// stack). Pinned on the LRU engine, whose float hits return a shared slice;
// the arena engine decodes a fresh vector per float hit by design (its
// zero-alloc contract covers the raw path and is pinned in internal/vcache's
// TestHitPathZeroAlloc).
func TestLookupHitZeroAllocWithRecorder(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 10)
	s, err := Open(Config{Tables: tables, DRAMBudgetVectors: 256, Seed: 1, CacheEngine: CacheEngineLRU})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A small recorder ring so the warmup below touches every slot: each
	// ring slot heap-allocates its reusable ID buffer on FIRST use (bounded
	// by ring capacity, amortized to zero); steady state must be
	// allocation-free.
	if err := s.StartAdaptation(AdaptOptions{MinQueries: 16, RecorderQueries: 64, RecorderStripes: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ { // warm the cache and every ring slot
		if _, err := s.Lookup(0, 7); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := s.Lookup(0, 7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("cache-hit lookup allocates %.1f times per op with recording on, want 0", allocs)
	}
}
