package core

import (
	"fmt"
	"time"
)

// StageTrace accumulates the per-stage latency decomposition of one serving
// operation (all times in microseconds). A caller that wants a per-request
// breakdown — the server's slow-request log — passes a zero StageTrace to a
// *Traced lookup variant; the serving path then times every stage
// unconditionally instead of sampling the probe stage. The struct is plain
// data with no synchronization: one trace belongs to one request.
type StageTrace struct {
	// ProbeUS is time spent probing the DRAM cache (and delta overlay).
	ProbeUS float64
	// QueueWaitUS is time the request's miss reads spent queued in the I/O
	// scheduler before dispatch (0 when the store reads the device inline).
	QueueWaitUS float64
	// ServiceUS is simulated device time of the request's miss reads (the
	// slowest batch member per dispatch, summed over dispatches).
	ServiceUS float64
	// DecodeUS is time spent fp16-decoding requested vectors (prefetch
	// admission decodes are not included).
	DecodeUS float64
	// Lookups/Hits/Misses count the vectors this operation served and how
	// they were classified; BlockReads counts device blocks it read.
	Lookups    int
	Hits       int
	Misses     int
	BlockReads int
}

// probeSampleMask controls cache-probe stage sampling: with tracing off, the
// probe is timed on ~1/64 of lookups so the ~120 ns all-DRAM hit path does
// not pay two time.Now calls per request (clock reads cost tens of ns on a
// virtualized clocksource). The sampling decision is derived from the value
// the per-table lookup counter's atomic increment returns anyway — a stripe
// samples its 1st, 65th, 129th... increment (== 1 after masking, so lightly
// loaded tables still get early probe samples) — so it costs zero extra
// instructions
// on the hit path, unlike a random draw (measured ~15 ns/op). A stripe is
// shared by many ids, so a hot id is sampled in proportion to its access
// rate rather than always (or never), which a fixed per-id hash test would
// do; that keeps the probe histogram unbiased across the key distribution.
const probeSampleMask = 63

// usSince converts the elapsed time since start to microseconds.
func usSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Microsecond)
}

// LookupTraced is Lookup with a per-stage latency breakdown accumulated into
// tr (which must be non-nil).
func (s *Store) LookupTraced(tableIdx int, id uint32, tr *StageTrace) ([]float32, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, err
	}
	return st.lookup(s.device, id, tr)
}

// LookupBatchTraced is LookupBatch with a per-stage latency breakdown
// accumulated into tr (which must be non-nil).
func (s *Store) LookupBatchTraced(tableIdx int, ids []uint32, tr *StageTrace) ([][]float32, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, err
	}
	out := make([][]float32, len(ids))
	if err := st.serveBatch(s.device, ids, out, nil, tr, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// LookupBatchRawTraced is LookupBatchRaw with a per-stage latency breakdown
// accumulated into tr (which must be non-nil). Like LookupBatchRaw, the
// returned slices are caller-owned copies under the arena engine.
func (s *Store) LookupBatchRawTraced(tableIdx int, ids []uint32, tr *StageTrace) ([][]byte, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(ids))
	var release func()
	if err := st.serveBatch(s.device, ids, nil, out, tr, &release); err != nil {
		if release != nil {
			release()
		}
		return nil, err
	}
	if !st.loadState().cache.StableViews() {
		copyRawViews(out)
	}
	release()
	return out, nil
}

// ServeRequestTraced is ServeRequest with a per-stage latency breakdown
// accumulated into tr (which must be non-nil) across all tables.
func (s *Store) ServeRequestTraced(req Request, tr *StageTrace) ([][][]float32, error) {
	if len(req) > len(s.tables) {
		return nil, fmt.Errorf("core: request has %d tables, store has %d", len(req), len(s.tables))
	}
	out := make([][][]float32, len(req))
	for ti, ids := range req {
		if len(ids) == 0 {
			continue
		}
		vecs, err := s.LookupBatchTraced(ti, ids, tr)
		if err != nil {
			return nil, err
		}
		out[ti] = vecs
	}
	return out, nil
}
