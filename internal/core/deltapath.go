package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"bandana/internal/iosched"
	"bandana/internal/table"
)

// This file is the delta update path and its two consumers: the background
// compactor that folds overlay entries into the block image, and the
// replication hooks (UpdatesSince on a primary, ApplyReplicatedUpdates on a
// replica) that stream individual updates instead of whole images. See
// deltalog.go for the log/overlay data structures.

// applyUpdate is the commit path shared by UpdateVector and UpdateVectorRaw.
// raw must be exactly st.vecBytes long (callers validate). owned says the
// slice was freshly allocated for this call and may be retained (UpdateVector
// encodes into one); a caller-owned slice is copied before the overlay and
// the log capture it. Without an update log it is the classic journaled
// read-modify-write; with one, the update costs one log append plus DRAM
// work, and the block image is repaired later by compaction. Returns the
// snapshot seq this update committed at.
func (s *Store) applyUpdate(st *storeTable, id uint32, raw []byte, owned bool) (uint64, error) {
	if s.deltaLog == nil {
		if err := st.updateRaw(s.device, id, raw); err != nil {
			return 0, err
		}
		// The committed image changed: replicas polling the snapshot seq
		// must see it move so they can re-sync the new bytes.
		return s.bumpSnapshotSeq(), nil
	}

	st.updateMu.Lock()
	defer st.updateMu.Unlock()
	if err := st.src.SetRaw(id, raw); err != nil {
		return 0, fmt.Errorf("core: table %q: %w", st.name, err)
	}
	// The overlay and the log retain the bytes indefinitely; a slice the
	// caller may reuse must not be captured.
	cp := raw
	if !owned {
		cp = append(make([]byte, 0, len(raw)), raw...)
	}
	seq, needCompact, err := s.deltaLog.append(&s.snapSeq, uint32(st.index), id, cp)
	if err != nil {
		// The on-disk mirror rejected the append (failing/full disk). The
		// update still commits — src holds it and the overlay serves it —
		// but its durability degrades to the next successful compaction,
		// and the log window resets so followers full-sync instead of
		// tailing across the hole.
		s.deltaLog.fallbacks.Add(1)
		s.deltaLog.invalidate(s.snapSeq.Load())
	}
	st.overlay.put(id, cp, seq)
	// Epoch before the cache removal, exactly like the write-through path: a
	// miss that decoded the (now stale) block image before this update
	// cannot re-cache its bytes after the removal.
	st.epoch.Add(1)
	st.loadState().cache.Remove(id)
	if needCompact || st.overlay.size() >= s.deltaLog.compactAfter {
		s.requestCompaction()
	}
	return seq, nil
}

// requestCompaction nudges the background compactor; a compaction already
// pending or running absorbs the request.
func (s *Store) requestCompaction() {
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// compactLoop is the background compactor goroutine (one per store with an
// update log); Close stops it before tearing down the scheduler and device.
func (s *Store) compactLoop() {
	defer close(s.compactDone)
	for {
		select {
		case <-s.compactStop:
			return
		case <-s.compactCh:
			if err := s.CompactDeltas(); err != nil {
				s.deltaLog.compactFailures.Add(1)
			}
		}
	}
}

// CompactDeltas folds every table's overlay into the NVM block image
// (amortizing all accumulated updates of a block into one journaled
// read-modify-write), makes the result durable, and trims the update log to
// its retention tail. It runs in the background automatically; call it
// directly to bound the overlay before e.g. measuring the device. No-op
// without an update log.
func (s *Store) CompactDeltas() error {
	if s.deltaLog == nil {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	// Every record with seq <= through is guaranteed to be covered by the
	// overlay snapshots taken below (the snapshot happens under updateMu,
	// and an updater holds updateMu from before its seq is assigned until
	// after its overlay put) — or by an earlier compaction that already
	// flushed. That is what makes the log truncation at the end safe.
	through := s.snapSeq.Load()
	dirty := false
	for _, st := range s.tables {
		n, err := s.compactTable(st)
		if err != nil {
			return err
		}
		if n > 0 {
			dirty = true
		}
	}
	if dirty {
		// The dropped log records' only other home is the block image; it
		// must be durable before the log stops carrying them.
		if err := s.device.Flush(); err != nil {
			return err
		}
	}
	return s.deltaLog.truncate(through)
}

// compactTable folds one table's overlay into its block range: group the
// overlaid vectors by block, read-modify-write each dirty block once, then
// drop exactly the entries that were folded (a vector updated again while
// compaction ran keeps its newer overlay entry). Returns how many entries
// were folded.
func (s *Store) compactTable(st *storeTable) (int, error) {
	if st.overlay == nil {
		return 0, nil
	}
	// Lock order (updateMu -> rewriteMu) matches rewriteTable. The snapshot
	// happens under updateMu so it includes every update the caller's
	// `through` seq observed; rewriteMu stays held shared across the writes
	// so no whole-table rewrite can interleave — a rewrite renders the image
	// from src (which already includes these values) and clears the overlay,
	// and patching its fresh image with this snapshot afterwards would
	// resurrect older bytes.
	st.updateMu.Lock()
	st.rewriteMu.RLock()
	snap := st.overlay.snapshot()
	st.updateMu.Unlock()
	defer st.rewriteMu.RUnlock()
	if len(snap) == 0 {
		return 0, nil
	}
	ts := st.loadState()
	byBlock := make(map[int][]uint32)
	for id := range snap {
		b := ts.layout.BlockOf(id)
		byBlock[b] = append(byBlock[b], id)
	}
	blocks := make([]int, 0, len(byBlock))
	for b := range byBlock {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)

	minEpoch := st.epoch.Load()
	bufp := getBlockBuf()
	defer putBlockBuf(bufp)
	buf := *bufp
	for _, b := range blocks {
		abs := st.blockBase + b
		// Background (prefetch-class) reads: compaction must never starve
		// foreground lookups of device bandwidth.
		if st.sched != nil {
			for {
				res, err := st.sched.ReadBlock(abs, buf, iosched.Prefetch, minEpoch)
				if err != nil {
					return 0, fmt.Errorf("core: table %q: %w", st.name, err)
				}
				// Freshness: a Late read may carry bytes snapshotted before
				// an earlier NVM write to this table; every such write
				// bumped the epoch before minEpoch was loaded (we hold
				// rewriteMu shared and compactions serialize on compactMu),
				// so only a leader tag from BEFORE minEpoch can be stale.
				// Delta updates bump the epoch without touching NVM, so the
				// comparison is < (not !=): fresh leaders always carry tags
				// >= minEpoch and the retry terminates under update load.
				if res.Late && res.LeaderTag < minEpoch {
					continue
				}
				break
			}
		} else if _, err := s.device.ReadBlock(abs, buf); err != nil {
			return 0, fmt.Errorf("core: table %q: %w", st.name, err)
		}
		for _, id := range byBlock[b] {
			slot := ts.layout.SlotOf(id)
			copy(buf[slot*st.vecBytes:], snap[id].raw)
		}
		if err := s.device.WriteBlock(abs, buf); err != nil {
			return 0, fmt.Errorf("core: table %q: %w", st.name, err)
		}
	}
	// The image changed under in-flight misses: bump before dropping the
	// overlay entries so a miss that read a pre-compaction block cannot
	// cache stale bytes once the overlay stops shadowing them.
	st.epoch.Add(1)
	for id, e := range snap {
		st.overlay.deleteIfSeq(id, e.seq)
	}
	return len(snap), nil
}

// UpdatesSince returns up to maxRecords logged updates with seq > since (also
// bounded by maxBytes of framed payload; <=0 uses defaults), in commit order.
// upTo is the seq of the last returned record — a follower that applies the
// batch has exactly the primary's image at upTo. ok is false when the store
// has no update log or since lies outside the retained window (compacted
// away, or from a different history): the follower must full-sync.
func (s *Store) UpdatesSince(since uint64, maxRecords, maxBytes int) (recs []UpdateRecord, upTo uint64, ok bool) {
	if s.deltaLog == nil {
		return nil, 0, false
	}
	if maxRecords <= 0 {
		maxRecords = 1 << 16
	}
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}
	return s.deltaLog.since(since, maxRecords, maxBytes)
}

// advanceSeq moves seq forward to `to` (never backward).
func advanceSeq(seq *atomic.Uint64, to uint64) {
	for {
		cur := seq.Load()
		if to <= cur || seq.CompareAndSwap(cur, to) {
			return
		}
	}
}

// ApplyReplicatedUpdates applies update records streamed from a primary to a
// read-only replica store, in order: each record's bytes go to the source
// table and the DRAM overlay (or, without an update log, read-modify-write
// through to NVM), the cached copy is invalidated, and the store's snapshot
// seq advances to the record's — published only after the record is applied
// (and appended to this store's own log, when it has one), so a downstream
// follower that observes the seq can always fetch through it. Records'
// payloads are retained; callers must not modify them after the call.
//
// It deliberately bypasses the ReadOnly gate — that gate exists so local
// mutations cannot diverge a replica from its primary, and replicated
// records ARE the primary's mutations. It refuses writable stores: those
// take updates through UpdateVector.
func (s *Store) ApplyReplicatedUpdates(recs []UpdateRecord) error {
	if !s.readOnly {
		return fmt.Errorf("core: ApplyReplicatedUpdates is the replication apply path; this store is writable (use UpdateVector)")
	}
	for _, rec := range recs {
		if int(rec.Table) >= len(s.tables) {
			return fmt.Errorf("core: replicated update references table %d, store has %d", rec.Table, len(s.tables))
		}
		st := s.tables[rec.Table]
		if len(rec.Raw) != st.vecBytes {
			return fmt.Errorf("core: table %q: replicated update carries %d bytes, want %d", st.name, len(rec.Raw), st.vecBytes)
		}
		if int(rec.ID) >= st.src.NumVectors() {
			return fmt.Errorf("core: table %q: %w: %d", st.name, table.ErrBadVector, rec.ID)
		}
	}
	for _, rec := range recs {
		if err := s.applyReplicatedOne(s.tables[rec.Table], rec); err != nil {
			return err
		}
		advanceSeq(&s.snapSeq, rec.Seq)
	}
	return nil
}

func (s *Store) applyReplicatedOne(st *storeTable, rec UpdateRecord) error {
	if s.deltaLog == nil || st.overlay == nil {
		// No log on this store: write through (updateRaw takes updateMu and
		// maintains src + NVM + cache itself).
		return st.updateRaw(s.device, rec.ID, rec.Raw)
	}
	st.updateMu.Lock()
	defer st.updateMu.Unlock()
	if err := st.src.SetRaw(rec.ID, rec.Raw); err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	// Re-log the record with the primary's seq: this replica's own log then
	// serves the same seq->record contract downstream (chained replication),
	// and a crash replays the tail exactly like on a primary.
	needCompact, err := s.deltaLog.appendRecord(rec)
	if err != nil {
		s.deltaLog.fallbacks.Add(1)
		s.deltaLog.invalidate(rec.Seq)
	}
	st.overlay.put(rec.ID, rec.Raw, rec.Seq)
	st.epoch.Add(1)
	st.loadState().cache.Remove(rec.ID)
	if needCompact || st.overlay.size() >= s.deltaLog.compactAfter {
		s.requestCompaction()
	}
	return nil
}
