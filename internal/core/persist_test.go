package core

import (
	"bytes"
	"testing"

	"bandana/internal/trace"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	tables, traces := buildTestTables(t, 2, 2048, 600)
	trains := make([]*trace.Trace, len(traces))
	evals := make([]*trace.Trace, len(traces))
	for i, tr := range traces {
		trains[i], evals[i] = tr.Split(0.5)
	}

	// Train one store and snapshot its state.
	s1, err := Open(Config{Tables: tables, DRAMBudgetVectors: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if _, err := s1.Train(trains, TrainOptions{SHPIterations: 6, MiniCacheSampling: 0.5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// Open a fresh store over the same tables and load the state.
	s2, err := Open(Config{Tables: tables, DRAMBudgetVectors: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The restored store must behave like the trained one: prefetching on,
	// same thresholds and cache sizes, and identical block read counts when
	// serving the same evaluation workload.
	serve := func(s *Store) []TableStats {
		s.ResetStats()
		for ti, tr := range evals {
			for _, q := range tr.Queries {
				if _, err := s.LookupBatch(ti, q); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s.Stats()
	}
	st1 := serve(s1)
	st2 := serve(s2)
	for i := range st1 {
		if !st2[i].Prefetching {
			t.Fatalf("table %d: prefetching not restored", i)
		}
		if st1[i].Threshold != st2[i].Threshold {
			t.Fatalf("table %d: threshold %d != %d", i, st1[i].Threshold, st2[i].Threshold)
		}
		if st1[i].CacheVectors != st2[i].CacheVectors {
			t.Fatalf("table %d: cache %d != %d", i, st1[i].CacheVectors, st2[i].CacheVectors)
		}
		if st1[i].BlockReads != st2[i].BlockReads {
			t.Fatalf("table %d: block reads %d != %d (placement not restored faithfully)",
				i, st1[i].BlockReads, st2[i].BlockReads)
		}
	}

	// Data integrity: restored placement still returns the right vectors.
	for _, id := range []uint32{0, 7, 2047} {
		got, err := s2.Lookup(0, id)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := tables[0].Vector(id)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("vector %d corrupted after LoadState", id)
			}
		}
	}
}

func TestLoadStateValidation(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 20)
	s, err := Open(Config{Tables: tables, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.LoadState(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage input should be rejected")
	}
	if err := s.LoadState(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should be rejected")
	}

	// State from a store with a different table set must be rejected.
	otherTables, _ := buildTestTables(t, 2, 1024, 20)
	other, err := Open(Config{Tables: otherTables, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	var buf bytes.Buffer
	if err := other.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("state with a different table count should be rejected")
	}
}

func TestSaveStateUntrainedThenLoad(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 20)
	s, err := Open(Config{Tables: tables, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var buf bytes.Buffer
	if err := s.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Untrained state: identity layout, no prefetching.
	if s.Stats()[0].Prefetching {
		t.Fatal("untrained state should not enable prefetching")
	}
	if _, err := s.Lookup(0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestLookupBatchGroupsBlockReads(t *testing.T) {
	tables, _ := buildTestTables(t, 1, 1024, 20)
	s, err := Open(Config{Tables: tables, DRAMBudgetVectors: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Identity layout: vectors 0..31 share block 0, 32..63 share block 1.
	ids := []uint32{0, 1, 2, 3, 30, 31, 32, 40, 63}
	vecs, err := s.LookupBatch(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != len(ids) {
		t.Fatalf("result length %d", len(vecs))
	}
	st := s.Stats()[0]
	if st.BlockReads != 2 {
		t.Fatalf("batch spanning 2 blocks should cost 2 block reads, got %d", st.BlockReads)
	}
	if st.Misses != int64(len(ids)) {
		t.Fatalf("misses = %d, want %d", st.Misses, len(ids))
	}
	// Values must match the source table.
	for i, id := range ids {
		want, _ := tables[0].Vector(id)
		for d := range want {
			if vecs[i][d] != want[d] {
				t.Fatalf("vector %d mismatch in batch", id)
			}
		}
	}
}
