package core

import (
	"fmt"
	"sync/atomic"

	"bandana/internal/fp16"
	"bandana/internal/lru"
	"bandana/internal/vcache"
)

// Cache engine names for Config.CacheEngine.
const (
	// CacheEngineLRU is the classic engine: lru.Sharded with one heap
	//-allocated entry per vector holding the decoded []float32 (plus a
	// lazily built fp16 copy for the raw path). Float hits return a shared
	// slice with zero allocation; the GC scans every cached entry.
	CacheEngineLRU = "lru"
	// CacheEngineArena is the pointer-free engine (internal/vcache): fp16
	// payloads in slab arenas with packed recency metadata — ~2.5x less heap
	// per vector and nothing for the GC to scan, at the cost of one decode
	// allocation per float hit. Raw (wire-protocol) hits stay allocation-free.
	// The default.
	CacheEngineArena = "vcache"
)

// normalizeCacheEngine resolves a Config.CacheEngine value to a canonical
// engine name ("" selects the arena engine; "arena" is accepted as an alias).
func normalizeCacheEngine(e string) (string, error) {
	switch e {
	case "", CacheEngineArena, "arena":
		return CacheEngineArena, nil
	case CacheEngineLRU:
		return CacheEngineLRU, nil
	default:
		return "", fmt.Errorf("core: unknown cache engine %q (want %q or %q)", e, CacheEngineLRU, CacheEngineArena)
	}
}

// CacheEngineStats is the byte-accounting snapshot of one table's cache —
// memory as a budgeted resource, not just entry counts.
type CacheEngineStats struct {
	// Engine is the engine name (CacheEngineLRU or CacheEngineArena).
	Engine string
	// BytesResident is the payload bytes of resident entries. For the arena
	// engine this is exact (entries x fp16 slot size); for the LRU engine it
	// is the decoded-vector payload (entries x 4 x dim), excluding the
	// per-entry heap overhead the engine exists to have.
	BytesResident int64
	// ArenaBytes is the total allocated slab bytes (0 for the LRU engine,
	// which has no arenas).
	ArenaBytes int64
	// ArenaUtilization is BytesResident / ArenaBytes (0 without arenas).
	ArenaUtilization float64
	// Slabs is the allocated slab count (0 for the LRU engine).
	Slabs int
}

// tableCache is the serving path's view of a per-table DRAM cache. Both
// engines implement exactly the Bandana cache semantics the simulator tunes
// (segmented per-shard LRU, positional AddAt insertion, prefetch-flag
// accounting, in-place Resize) and are drop-in equivalent for hit/miss/
// eviction sequences; they differ in memory representation and in the
// lifetime of the views they hand out (see StableViews/Lease).
type tableCache interface {
	// GetFloat serves a float hit: it promotes id, clears the prefetched
	// flag and returns the decoded vector (a stable slice the caller may
	// hand out) plus whether the entry was an unclaimed prefetch.
	GetFloat(id uint32) (vec []float32, wasPrefetched, ok bool)
	// GetRequested promotes id if cached, and returns its decoded vector
	// only when the entry was inserted by a request (not an unclaimed
	// prefetch), without clearing the prefetched flag — the coalesced-miss
	// reuse probe.
	GetRequested(id uint32) ([]float32, bool)
	// GetRaw serves a raw (fp16) hit: promotes, clears the prefetched flag
	// and returns the encoded bytes. The view is only guaranteed stable
	// while a Lease is held (see StableViews).
	GetRaw(id uint32) (raw []byte, wasPrefetched, ok bool)
	// Contains reports residency without touching recency.
	Contains(id uint32) bool
	// Insert caches id at queue position pos, all under the owning shard's
	// lock: it aborts if guard's value no longer equals want (the table
	// mutated since the caller read its bytes), or if prefetched is set and
	// id is already cached (never demote a requested entry to a prefetch).
	// raw is the vector's fp16 encoding (always available at the call
	// sites); rawOwned says the bytes are immutable and heap-stable, so an
	// engine that retains raw by reference may keep them without copying.
	// vec is the decoded vector; nil when the engine reported
	// NeedsDecoded()==false and the caller skipped the decode.
	Insert(id uint32, vec []float32, raw []byte, rawOwned bool, pos float64, prefetched bool, guard *atomic.Uint64, want uint64) bool
	// Remove deletes id and reports whether it was present.
	Remove(id uint32) bool
	// Resize changes the capacity in place (incremental per-shard eviction;
	// the working set survives). Returns the engine's recorded capacity.
	Resize(capacity int) int
	Len() int
	NumShards() int
	// Lease brackets a request that holds GetRaw views; the returned release
	// must be called when the request no longer reads them. The LRU engine's
	// lease is a shared no-op.
	Lease() func()
	// StableViews reports that GetRaw/GetFloat views outlive the lease (the
	// LRU engine's immutable heap slices). False means views into arenas:
	// valid only under the lease, copy to retain.
	StableViews() bool
	// NeedsDecoded reports whether Insert wants the decoded vector. The
	// arena engine stores only fp16 and lets prefetch admission skip the
	// decode entirely.
	NeedsDecoded() bool
	// EngineStats returns the engine's byte accounting.
	EngineStats() CacheEngineStats
}

// newTableCache builds a tableCache for a canonical engine name. dim is the
// table's vector element count (the arena engine sizes its slots from it).
func newTableCache(engine string, capacity, shards, dim int) tableCache {
	if engine == CacheEngineLRU {
		return &lruEngine{c: newVecCache(capacity, shards), dim: dim}
	}
	return &arenaEngine{
		c: vcache.New(vcache.Options{
			Capacity:  capacity,
			SlotBytes: dim * fp16.ByteSize,
			Shards:    shards,
			Hash:      hashID,
		}),
		dim: dim,
	}
}

// ---- classic LRU engine ----

// lruEngine adapts lru.Sharded[uint32, *cachedVec] (the original per-entry
// heap representation) to tableCache. Retained for equivalence testing and
// for callers that want stable zero-alloc float views.
type lruEngine struct {
	c   *vecCache
	dim int
}

// noopRelease is the shared lease release of engines whose views are stable.
var noopRelease = func() {}

func (e *lruEngine) GetFloat(id uint32) (vec []float32, wasPrefetched, ok bool) {
	e.c.Do(id, func(c *lru.Cache[uint32, *cachedVec]) {
		if ent, hit := c.Get(id); hit {
			vec = ent.vec
			wasPrefetched = ent.prefetched
			ent.prefetched = false
			ok = true
		}
	})
	return vec, wasPrefetched, ok
}

func (e *lruEngine) GetRequested(id uint32) (vec []float32, served bool) {
	e.c.Do(id, func(c *lru.Cache[uint32, *cachedVec]) {
		if ent, hit := c.Get(id); hit && !ent.prefetched {
			vec = ent.vec
			served = true
		}
	})
	return vec, served
}

func (e *lruEngine) GetRaw(id uint32) (raw []byte, wasPrefetched, ok bool) {
	e.c.Do(id, func(c *lru.Cache[uint32, *cachedVec]) {
		if ent, hit := c.Get(id); hit {
			if ent.raw == nil {
				// Cached by the float path and never served raw: build the
				// fp16 view once, under the shard lock.
				ent.raw = fp16.EncodeSlice(make([]byte, 0, len(ent.vec)*fp16.ByteSize), ent.vec)
			}
			raw = ent.raw
			wasPrefetched = ent.prefetched
			ent.prefetched = false
			ok = true
		}
	})
	return raw, wasPrefetched, ok
}

func (e *lruEngine) Contains(id uint32) bool { return e.c.Contains(id) }

func (e *lruEngine) Insert(id uint32, vec []float32, raw []byte, rawOwned bool, pos float64, prefetched bool, guard *atomic.Uint64, want uint64) bool {
	inserted := false
	if !rawOwned {
		// The bytes belong to a recycled block buffer; the entry's raw view
		// is rebuilt lazily on the first raw hit instead.
		raw = nil
	}
	e.c.Do(id, func(c *lru.Cache[uint32, *cachedVec]) {
		if guard != nil && guard.Load() != want {
			return
		}
		if prefetched && c.Contains(id) {
			return
		}
		c.AddAt(id, &cachedVec{vec: vec, raw: raw, prefetched: prefetched}, pos)
		inserted = true
	})
	return inserted
}

func (e *lruEngine) Remove(id uint32) bool   { return e.c.Remove(id) }
func (e *lruEngine) Resize(capacity int) int { return e.c.Resize(capacity) }
func (e *lruEngine) Len() int                { return e.c.Len() }
func (e *lruEngine) NumShards() int          { return e.c.NumShards() }
func (e *lruEngine) Lease() func()           { return noopRelease }
func (e *lruEngine) StableViews() bool       { return true }
func (e *lruEngine) NeedsDecoded() bool      { return true }

func (e *lruEngine) EngineStats() CacheEngineStats {
	return CacheEngineStats{
		Engine:        CacheEngineLRU,
		BytesResident: int64(e.c.Len()) * int64(e.dim) * 4,
	}
}

// ---- pointer-free arena engine ----

// arenaEngine adapts vcache.Cache to tableCache. Payloads live as fp16 in
// slab arenas; float results are decoded fresh under the shard lock (one
// allocation per float hit), raw results are zero-copy arena views valid
// under the caller's lease.
type arenaEngine struct {
	c   *vcache.Cache
	dim int
}

func (e *arenaEngine) GetFloat(id uint32) (vec []float32, wasPrefetched, ok bool) {
	ok = e.c.GetFunc(id, func(payload []byte, wasPre bool) {
		vec = make([]float32, e.dim)
		fp16.DecodeSlice(vec, payload)
		wasPrefetched = wasPre
	})
	return vec, wasPrefetched, ok
}

func (e *arenaEngine) GetRequested(id uint32) (vec []float32, served bool) {
	served = e.c.GetRequestedFunc(id, func(payload []byte) {
		vec = make([]float32, e.dim)
		fp16.DecodeSlice(vec, payload)
	})
	return vec, served
}

func (e *arenaEngine) GetRaw(id uint32) (raw []byte, wasPrefetched, ok bool) {
	return e.c.Get(id)
}

func (e *arenaEngine) Contains(id uint32) bool { return e.c.Contains(id) }

func (e *arenaEngine) Insert(id uint32, _ []float32, raw []byte, _ bool, pos float64, prefetched bool, guard *atomic.Uint64, want uint64) bool {
	// The arena copies raw regardless of ownership and never stores the
	// decoded vector.
	return e.c.AddAtGuard(id, raw, pos, prefetched, guard, want)
}

func (e *arenaEngine) Remove(id uint32) bool   { return e.c.Remove(id) }
func (e *arenaEngine) Resize(capacity int) int { return e.c.Resize(capacity) }
func (e *arenaEngine) Len() int                { return e.c.Len() }
func (e *arenaEngine) NumShards() int          { return e.c.NumShards() }
func (e *arenaEngine) Lease() func()           { return e.c.Lease() }
func (e *arenaEngine) StableViews() bool       { return false }
func (e *arenaEngine) NeedsDecoded() bool      { return false }

func (e *arenaEngine) EngineStats() CacheEngineStats {
	st := e.c.Stats()
	return CacheEngineStats{
		Engine:           CacheEngineArena,
		BytesResident:    st.BytesResident,
		ArenaBytes:       st.ArenaBytes,
		ArenaUtilization: st.Utilization,
		Slabs:            st.Slabs,
	}
}
