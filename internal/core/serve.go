package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bandana/internal/fp16"
	"bandana/internal/iosched"
	"bandana/internal/nvm"
	"bandana/internal/table"
)

// This file is the serving engine: the lock-free-read lookup paths, the
// cache interaction helpers and the single-vector update path. Everything
// here operates on a tableState snapshot loaded once per operation; the
// mutating layers (train.go, rewrite.go, adapt.go) publish new snapshots
// through the atomic state pointer, so serving never blocks on them.

// batchBufBlocks is the largest batched-miss read served from the pooled
// batch buffer; rarer, larger batches fall back to a one-off allocation.
const batchBufBlocks = 8

// dedupeScanThreshold is the batch size up to which duplicate ids are found
// by linear scan (no allocation); larger batches use a map.
const dedupeScanThreshold = 32

// batchBufPool recycles the multi-block read buffers of lookupBatch.
var batchBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, batchBufBlocks*nvm.BlockSize)
		return &b
	},
}

// Lookup returns the embedding vector id of table tableIdx. The returned
// slice is a read-only view shared with the cache; it stays valid until the
// vector is updated, but must not be modified by the caller.
func (s *Store) Lookup(tableIdx int, id uint32) ([]float32, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, err
	}
	return st.lookup(s.device, id, nil)
}

// LookupByName is Lookup with a table name.
func (s *Store) LookupByName(name string, id uint32) ([]float32, error) {
	i, err := s.TableIndex(name)
	if err != nil {
		return nil, err
	}
	return s.Lookup(i, id)
}

// LookupBatch returns the embeddings of every id in ids from table tableIdx.
// Lookups that miss the cache are grouped by NVM block, so a batch that hits
// k distinct blocks issues exactly k block reads regardless of how many of
// its vectors live in each block — the batched analogue of the paper's
// prefetching. Returned slices follow the same read-only contract as Lookup.
func (s *Store) LookupBatch(tableIdx int, ids []uint32) ([][]float32, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, err
	}
	out := make([][]float32, len(ids))
	if err := st.serveBatch(s.device, ids, out, nil, nil, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// LookupBatchRaw is LookupBatch without the decode: each returned slice is
// the vector's fp16 encoding, handed straight off the cached copy or the
// block image — the zero-decode read path of the binary wire protocol. It
// runs the full serving machinery (counters, admission, prefetch, cache
// fill), so a raw lookup warms the cache for float lookups and vice versa.
// Returned slices are owned by the caller when the store runs the arena
// cache engine (copied out of the arenas before return) and are read-only
// views with Lookup's lifetime contract under the LRU engine; servers on
// the hot path use LookupBatchRawLeased to skip the copy.
//
// Raw bytes are a valid fp16 encoding of the served value, decode-identical
// to the block image; under the LRU engine a hit on a float-cached entry is
// re-encoded, which quiets NaN payloads.
func (s *Store) LookupBatchRaw(tableIdx int, ids []uint32) ([][]byte, error) {
	out, release, err := s.LookupBatchRawLeased(tableIdx, ids)
	if err != nil {
		return nil, err
	}
	st := s.tables[tableIdx]
	if !st.loadState().cache.StableViews() {
		copyRawViews(out)
	}
	release()
	return out, nil
}

// LookupBatchRawLeased is LookupBatchRaw returning arena views directly:
// zero copies on the wire protocol's read path. The returned slices are
// valid until release is called, which the caller must do exactly once,
// after it has finished reading (or serializing) them. release is non-nil
// iff err is nil.
func (s *Store) LookupBatchRawLeased(tableIdx int, ids []uint32) ([][]byte, func(), error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]byte, len(ids))
	var release func()
	if err := st.serveBatch(s.device, ids, nil, out, nil, &release); err != nil {
		if release != nil {
			release()
		}
		return nil, nil, err
	}
	return out, release, nil
}

// copyRawViews rewrites every view in out into one freshly allocated buffer,
// so the results survive the lease release.
func copyRawViews(out [][]byte) {
	n := 0
	for _, v := range out {
		n += len(v)
	}
	if n == 0 {
		return
	}
	buf := make([]byte, 0, n)
	for i, v := range out {
		if v == nil {
			continue
		}
		off := len(buf)
		buf = append(buf, v...)
		out[i] = buf[off:len(buf):len(buf)]
	}
}

// LookupBatchRawByName is LookupBatchRaw with a table name.
func (s *Store) LookupBatchRawByName(name string, ids []uint32) ([][]byte, error) {
	i, err := s.TableIndex(name)
	if err != nil {
		return nil, err
	}
	return s.LookupBatchRaw(i, ids)
}

// TableDim returns the per-vector element count of table tableIdx.
func (s *Store) TableDim(tableIdx int) (int, error) {
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return 0, err
	}
	return st.dim, nil
}

// Request is one recommendation request: for each table (by index), the
// vector IDs to look up.
type Request [][]uint32

// ServeRequest resolves every lookup of a request, returning the embeddings
// grouped by table.
func (s *Store) ServeRequest(req Request) ([][][]float32, error) {
	if len(req) > len(s.tables) {
		return nil, fmt.Errorf("core: request has %d tables, store has %d", len(req), len(s.tables))
	}
	out := make([][][]float32, len(req))
	for ti, ids := range req {
		if len(ids) == 0 {
			continue
		}
		vecs, err := s.LookupBatch(ti, ids)
		if err != nil {
			return nil, err
		}
		out[ti] = vecs
	}
	return out, nil
}

// UpdateVector overwrites the embedding of vector id in table tableIdx
// (e.g. after periodic re-training of the model) and invalidates the cached
// copy. Without an update log the write read-modify-writes the containing
// NVM block; with one (Config.UpdateLog) it appends a single log record and
// is served from the DRAM overlay until compaction folds it into the image
// (see deltalog.go).
func (s *Store) UpdateVector(tableIdx int, id uint32, vec []float32) error {
	_, err := s.UpdateVectorSeq(tableIdx, id, vec)
	return err
}

// UpdateVectorSeq is UpdateVector returning the snapshot seq the update
// committed at — under concurrent updates the store's live SnapshotSeq may
// already be past it, so callers that promise "the seq of THIS update"
// (the HTTP update handler) must use this return value, not a later read.
func (s *Store) UpdateVectorSeq(tableIdx int, id uint32, vec []float32) (uint64, error) {
	if err := s.checkWritable(); err != nil {
		return 0, err
	}
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return 0, err
	}
	if len(vec) != st.dim {
		return 0, fmt.Errorf("core: table %q: vector has %d elements, want %d", st.name, len(vec), st.dim)
	}
	return s.applyUpdate(st, id, fp16.EncodeSlice(make([]byte, 0, st.vecBytes), vec), true)
}

// UpdateVectorRaw is UpdateVector with an already-encoded fp16 payload
// (exactly VectorBytes long) — the binary wire protocol's write path, which
// carries fp16 end to end and never decodes.
func (s *Store) UpdateVectorRaw(tableIdx int, id uint32, raw []byte) error {
	if err := s.checkWritable(); err != nil {
		return err
	}
	st, err := s.tableAt(tableIdx)
	if err != nil {
		return err
	}
	if len(raw) != st.vecBytes {
		return fmt.Errorf("core: table %q: raw vector has %d bytes, want %d", st.name, len(raw), st.vecBytes)
	}
	_, err = s.applyUpdate(st, id, raw, false)
	return err
}

// cacheGet serves a cache hit for id, clearing the prefetched flag and
// updating counters. It returns the cached vector or nil on a miss. h is
// hashID(id), shared between shard routing and counter striping.
func (st *storeTable) cacheGet(ts *tableState, id uint32, h uint64) []float32 {
	out, wasPrefetch, ok := ts.cache.GetFloat(id)
	if !ok {
		return nil
	}
	st.hits.Inc(h)
	if wasPrefetch {
		st.prefetchHits.Inc(h)
	}
	return out
}

// cacheGetRaw is cacheGet for the raw-fp16 read path: it returns the
// entry's fp16 view. Under the arena engine the view points into a slab and
// is only valid while the operation's lease is held; the LRU engine's views
// are stable heap slices (re-encoded once, lazily, on the first raw hit of
// a float-cached entry).
func (st *storeTable) cacheGetRaw(ts *tableState, id uint32, h uint64) []byte {
	out, wasPrefetch, ok := ts.cache.GetRaw(id)
	if !ok {
		return nil
	}
	st.hits.Inc(h)
	if wasPrefetch {
		st.prefetchHits.Inc(h)
	}
	return out
}

// cacheInsert caches a vector at queue position pos unless the table was
// mutated since epoch was read from st.epoch (in which case the bytes may be
// stale — the engine checks under the shard lock). Requested vectors pass
// pos 0 and prefetched=false; admitted prefetches carry the policy's
// position. raw is the vector's fp16 encoding (every call site has it at
// hand); rawOwned reports that the bytes are immutable and heap-stable
// rather than a view of a recycled block buffer. vec may be nil when the
// engine does not need the decode (see tableCache.NeedsDecoded).
func (st *storeTable) cacheInsert(ts *tableState, id uint32, vec []float32, raw []byte, rawOwned bool, pos float64, prefetched bool, epoch uint64) bool {
	return ts.cache.Insert(id, vec, raw, rawOwned, pos, prefetched, &st.epoch, epoch)
}

// admitBlock offers every not-yet-cached vector of the freshly read block to
// the admission policy, caching the ones it admits (decoding them only when
// the engine stores decoded vectors). requested reports IDs that were
// explicitly asked for in this operation (they are cached separately and
// must not be double-counted as prefetches).
func (st *storeTable) admitBlock(ts *tableState, buf []byte, epoch uint64, members []uint32, requested func(uint32) bool) {
	needDec := ts.cache.NeedsDecoded()
	for mslot, other := range members {
		if requested(other) || ts.cache.Contains(other) {
			continue
		}
		if st.overlay != nil && st.overlay.contains(other) {
			// The block image's copy of an overlaid vector is stale; its
			// authoritative bytes are served from the overlay until
			// compaction, so never cache the image's decode.
			continue
		}
		admit, pos := ts.policy.AdmitPrefetch(other)
		if !admit {
			continue
		}
		raw := buf[mslot*st.vecBytes : (mslot+1)*st.vecBytes]
		var dec []float32
		if needDec {
			dec = make([]float32, st.dim)
			fp16.DecodeSlice(dec, raw)
		}
		if st.cacheInsert(ts, other, dec, raw, false, pos, true, epoch) {
			st.prefetchAdds.Inc(hashID(other))
		}
	}
}

// readBlockMiss reads one absolute device block on the miss path: through
// the I/O scheduler as a demand read when the store has one (coalescing
// with concurrent misses for the same block, batching with independent
// ones), inline otherwise. The caller must hold st.rewriteMu shared and
// must have loaded epoch from st.epoch BEFORE calling.
//
// Freshness: the epoch rides along as the read's tag. A read that attached
// to an already-issued device read (Late) may receive bytes snapshotted
// arbitrarily earlier — in particular before this caller's own epoch load —
// so comparing the *caller's* epoch to the current one cannot detect the
// staleness. Comparing the *leader's* tag can, exactly: the epoch is
// monotonic, so leaderTag == current epoch proves no NVM write to this
// table landed anywhere between the leader's epoch load (which precedes
// the device read) and now, making the bytes current; any write in between
// leaves leaderTag behind the current epoch and forces a re-read. Returns
// the epoch the bytes are consistent with.
func (st *storeTable) readBlockMiss(device *nvm.Device, abs int, buf []byte, epoch uint64) (lat, wait float64, coalesced bool, outEpoch uint64, err error) {
	if st.sched == nil {
		lat, err = device.ReadBlock(abs, buf)
		return lat, 0, false, epoch, err
	}
	for {
		res, err := st.sched.ReadBlock(abs, buf, iosched.Demand, epoch)
		if err != nil {
			return 0, 0, false, epoch, err
		}
		if res.Late && res.LeaderTag != st.epoch.Load() {
			epoch = st.epoch.Load()
			continue
		}
		return res.LatencyUS, res.WaitUS, res.Coalesced, epoch, nil
	}
}

// readBlocksMiss is readBlockMiss for a set of distinct absolute blocks
// (the batched miss path). It returns the slowest read's latency and, when
// the scheduler served any block from someone else's device read, a
// per-block coalesced mask (nil otherwise). The same leader-tag freshness
// contract applies (see readBlockMiss): if any block was served Late by a
// leader whose tag no longer matches the current epoch, the whole set is
// re-submitted.
func (st *storeTable) readBlocksMiss(device *nvm.Device, abs []int, dst []byte, epoch uint64) (lat, wait float64, coalesced []bool, outEpoch uint64, err error) {
	if st.sched == nil {
		lat, err = device.ReadBlocks(abs, dst)
		return lat, 0, nil, epoch, err
	}
	for {
		results, err := st.sched.ReadBlocks(abs, dst, iosched.Demand, epoch)
		if err != nil {
			return 0, 0, nil, epoch, err
		}
		stale := false
		for _, r := range results {
			if r.Late && r.LeaderTag != st.epoch.Load() {
				stale = true
				break
			}
		}
		if stale {
			epoch = st.epoch.Load()
			continue
		}
		var anyCoalesced bool
		for _, r := range results {
			if r.LatencyUS > lat {
				lat = r.LatencyUS
			}
			if r.WaitUS > wait {
				wait = r.WaitUS
			}
			anyCoalesced = anyCoalesced || r.Coalesced
		}
		if anyCoalesced {
			coalesced = make([]bool, len(results))
			for i, r := range results {
				coalesced[i] = r.Coalesced
			}
		}
		return lat, wait, coalesced, epoch, nil
	}
}

// observeMissIO records the wait/service decomposition of one miss-path
// device read into the table's stage histograms and the optional trace.
// LatencyUS (service) keeps its historical meaning in lookupLatency; the
// queue-wait component is only meaningful (and only recorded) when reads go
// through the I/O scheduler.
func (st *storeTable) observeMissIO(lat, wait float64, tr *StageTrace) {
	st.lookupLatency.Observe(lat)
	if st.sched != nil {
		st.queueWaitLatency.Observe(wait)
	}
	if tr != nil {
		tr.ServiceUS += lat
		tr.QueueWaitUS += wait
	}
}

// observeDecode records one requested-vector fp16 decode that started at
// start into the table's decode-stage histogram and the optional trace.
func (st *storeTable) observeDecode(start time.Time, tr *StageTrace) {
	d := usSince(start)
	st.decodeLatency.Observe(d)
	if tr != nil {
		tr.DecodeUS += d
	}
}

// lookup serves one vector read for this table. tr, when non-nil,
// accumulates the per-stage latency breakdown (and forces the sampled
// probe-stage timer on).
func (st *storeTable) lookup(device *nvm.Device, id uint32, tr *StageTrace) ([]float32, error) {
	if int(id) >= st.src.NumVectors() {
		return nil, fmt.Errorf("core: table %q: %w: %d", st.name, table.ErrBadVector, id)
	}
	ts := st.loadState()
	h := hashID(id)
	nth := st.lookups.Inc(h)
	if tr != nil {
		tr.Lookups++
	}
	if r := st.recorder.Load(); r != nil {
		r.Record1(id)
	}
	if ts.policy != nil {
		ts.policy.OnAccess(id)
	}
	// The probe stage is timed on a sampled subset of lookups (always under
	// a trace): two time.Now calls would be a measurable tax on the ~120 ns
	// all-DRAM hit path, and a sampled probe histogram answers the same
	// operator question. The decision reuses the lookup counter's returned
	// value (see StripedCounter.Inc), which is free.
	probeTimed := tr != nil || nth&probeSampleMask == 1
	var probeStart time.Time
	if probeTimed {
		probeStart = time.Now()
	}
	out := st.cacheGet(ts, id, h)
	if probeTimed {
		d := usSince(probeStart)
		st.probeLatency.Observe(d)
		if tr != nil {
			tr.ProbeUS += d
		}
	}
	if out != nil {
		if tr != nil {
			tr.Hits++
		}
		return out, nil
	}
	if st.overlay != nil {
		// Probe the delta overlay before the miss path: an updated vector's
		// authoritative bytes live here until compaction folds them into the
		// block image (whose copy is stale). The epoch is loaded BEFORE the
		// overlay read so a concurrent newer update — overlay put, then epoch
		// bump, then cache invalidate — can never let this older decode be
		// cached past its invalidation.
		epoch := st.epoch.Load()
		if raw := st.overlay.get(id); raw != nil {
			st.hits.Inc(h)
			st.deltaHits.Inc(h)
			if tr != nil {
				tr.Hits++
			}
			decStart := time.Now()
			dec := make([]float32, st.dim)
			fp16.DecodeSlice(dec, raw)
			st.observeDecode(decStart, tr)
			st.cacheInsert(ts, id, dec, raw, true, 0, false, epoch)
			return dec, nil
		}
	}
	st.misses.Inc(h)
	if tr != nil {
		tr.Misses++
	}

	// Hold the rewrite lock shared for the block read + decode: under it,
	// the published layout is guaranteed to match the bytes on NVM.
	// Independent misses still overlap at the device (shared mode), and a
	// goroutine waiting on the I/O scheduler still holds its read lock, so
	// in-flight reads drain before a rewrite's exclusive acquisition.
	st.rewriteMu.RLock()
	defer st.rewriteMu.RUnlock()
	ts = st.loadState()
	epoch := st.epoch.Load()
	block := ts.layout.BlockOf(id)
	bufp := getBlockBuf()
	defer putBlockBuf(bufp)
	buf := *bufp
	lat, wait, coalesced, epoch, err := st.readBlockMiss(device, st.blockBase+block, buf, epoch)
	if err != nil {
		return nil, fmt.Errorf("core: table %q: %w", st.name, err)
	}
	if coalesced {
		// This miss shared another miss's device read. The leader has
		// usually decoded and cached the vector already: reuse it (one
		// device read, one decode, fan-out to all waiters). Counters are
		// final at this point — the lookup was already classified a miss.
		st.coalescedReads.Inc(h)
		if got, served := ts.cache.GetRequested(id); served {
			st.observeMissIO(lat, wait, tr)
			return got, nil
		}
	} else {
		st.blockReads.Inc(h)
		if tr != nil {
			tr.BlockReads++
		}
	}
	st.observeMissIO(lat, wait, tr)

	if st.overlay != nil {
		// Updated between the overlay probe above and this block read: the
		// image bytes just decoded are stale. Serve the overlay's and do not
		// cache the image's — the epoch guard alone cannot catch this case,
		// because a delta update moves the epoch without touching NVM, so the
		// post-update block re-read that makes write-through safe here still
		// returns pre-update bytes.
		if oraw := st.overlay.get(id); oraw != nil {
			decStart := time.Now()
			dec := make([]float32, st.dim)
			fp16.DecodeSlice(dec, oraw)
			st.observeDecode(decStart, tr)
			return dec, nil
		}
	}

	// Decode the requested vector once; the cache and the caller share the
	// same immutable slice.
	decStart := time.Now()
	slot := ts.layout.SlotOf(id)
	rawSlot := buf[slot*st.vecBytes : (slot+1)*st.vecBytes]
	want := make([]float32, st.dim)
	fp16.DecodeSlice(want, rawSlot)
	st.observeDecode(decStart, tr)
	st.cacheInsert(ts, id, want, rawSlot, false, 0, false, epoch)

	// Prefetch co-located vectors that pass the admission policy.
	if ts.prefetch && ts.policy != nil {
		members := ts.layout.BlockMembers(block, nil)
		st.admitBlock(ts, buf, epoch, members, func(other uint32) bool { return other == id })
	}
	return want, nil
}

// serveBatch serves a set of vector reads, grouping cache misses by NVM
// block so that each distinct block is read only once per batch. Exactly
// one of out (decoded float32 views) and outRaw (fp16 views, the wire
// protocol's zero-decode read path) is non-nil; both modes share the full
// serving machinery — counters, dedupe, admission, prefetch, cache fill —
// and differ only in what they hand back. tr, when non-nil, accumulates the
// per-stage latency breakdown.
//
// Raw mode hands out cache views whose lifetime may be bounded by a lease
// (the arena engine's slab views; see tableCache.StableViews): release must
// be non-nil in raw mode, and serveBatch stores the operation's lease
// release into it — even when it fails — which the caller must invoke once
// it no longer reads the returned views. Only pass-1 cache hits hand out
// leased views (overlay bytes are heap-stable and pass-2 block decodes are
// fresh copies), so the single lease taken before pass 1 covers everything.
func (st *storeTable) serveBatch(device *nvm.Device, ids []uint32, out [][]float32, outRaw [][]byte, tr *StageTrace, release *func()) error {
	for _, id := range ids {
		if int(id) >= st.src.NumVectors() {
			return fmt.Errorf("core: table %q: %w: %d", st.name, table.ErrBadVector, id)
		}
	}
	// have/copyPos abstract over the two output modes so the dedupe and
	// backfill logic below stays single-sourced.
	have := func(i int) bool {
		if outRaw != nil {
			return outRaw[i] != nil
		}
		return out[i] != nil
	}
	copyPos := func(dst, src int) {
		if outRaw != nil {
			outRaw[dst] = outRaw[src]
		} else {
			out[dst] = out[src]
		}
	}
	ts := st.loadState()
	if outRaw != nil {
		// Lease the cache for the raw views handed out below. Pass 2 may
		// reload the state snapshot, but a swapped-in cache never contributes
		// views to this operation's output (pass 2 only inserts), so leasing
		// the pass-1 cache is sufficient.
		*release = ts.cache.Lease()
	}
	// One batch is one co-access set ("query" in the paper's terms): record
	// it whole so the adaptation engine sees the hypergraph SHP needs, not
	// just a flat ID stream.
	if r := st.recorder.Load(); r != nil {
		r.Record(ids)
	}

	// Pass 1: serve cache hits and collect misses. Real batches are
	// power-law — the same hot id often appears many times in one request —
	// so repeated ids are deduplicated here: each unique id is resolved
	// (cache probe, block decode) exactly once and the result is fanned back
	// out to every position. Counter semantics are unchanged: every instance
	// still counts as a lookup and inherits its unique id's hit/miss
	// classification, exactly as when each instance probed the cache itself.
	type missRef struct {
		pos int
		id  uint32
	}
	var missed []missRef
	// Duplicate detection stays allocation-free for typical batch sizes (a
	// linear scan of the ids already seen); only large batches pay for a
	// map. This keeps the warm all-hit path — which previously allocated
	// nothing in pass 1 — from picking up a map allocation per call.
	var firstPos map[uint32]int
	if len(ids) > dedupeScanThreshold {
		firstPos = make(map[uint32]int, len(ids))
	}
	firstOf := func(i int, id uint32) (int, bool) {
		if firstPos != nil {
			j, ok := firstPos[id]
			return j, ok
		}
		for j := 0; j < i; j++ {
			if ids[j] == id {
				return j, true
			}
		}
		return 0, false
	}
	var dupMisses [][2]int // {duplicate position, first position} to backfill
	for i, id := range ids {
		h := hashID(id)
		nth := st.lookups.Inc(h)
		if tr != nil {
			tr.Lookups++
		}
		if ts.policy != nil {
			ts.policy.OnAccess(id)
		}
		if j, ok := firstOf(i, id); ok {
			if have(j) {
				st.hits.Inc(h)
				if tr != nil {
					tr.Hits++
				}
				copyPos(i, j)
			} else {
				st.misses.Inc(h)
				if tr != nil {
					tr.Misses++
				}
				dupMisses = append(dupMisses, [2]int{i, j})
			}
			continue
		}
		if firstPos != nil {
			firstPos[id] = i
		}
		// Per-unique-id probe timing, sampled exactly like lookup() so batch
		// and single-lookup probes land in one comparable histogram.
		probeTimed := tr != nil || nth&probeSampleMask == 1
		var probeStart time.Time
		if probeTimed {
			probeStart = time.Now()
		}
		var hit bool
		if outRaw != nil {
			if got := st.cacheGetRaw(ts, id, h); got != nil {
				outRaw[i] = got
				hit = true
			}
		} else if got := st.cacheGet(ts, id, h); got != nil {
			out[i] = got
			hit = true
		}
		if probeTimed {
			d := usSince(probeStart)
			st.probeLatency.Observe(d)
			if tr != nil {
				tr.ProbeUS += d
			}
		}
		if hit {
			if tr != nil {
				tr.Hits++
			}
			continue
		}
		if st.overlay != nil {
			// Same overlay-before-miss probe as lookup(), same epoch-first
			// ordering (see there).
			epoch := st.epoch.Load()
			if raw := st.overlay.get(id); raw != nil {
				st.hits.Inc(h)
				st.deltaHits.Inc(h)
				if tr != nil {
					tr.Hits++
				}
				decStart := time.Now()
				dec := make([]float32, st.dim)
				fp16.DecodeSlice(dec, raw)
				st.observeDecode(decStart, tr)
				if outRaw != nil {
					outRaw[i] = raw
				} else {
					out[i] = dec
				}
				st.cacheInsert(ts, id, dec, raw, true, 0, false, epoch)
				continue
			}
		}
		st.misses.Inc(h)
		if tr != nil {
			tr.Misses++
		}
		missed = append(missed, missRef{pos: i, id: id})
	}
	if len(missed) == 0 {
		return nil
	}

	// Pass 2: one NVM read per distinct block; decode all requested vectors
	// from it and apply the usual prefetch admission to the rest. Blocks are
	// processed in ascending order so a batch's cache effects are
	// deterministic. The whole pass holds the rewrite lock shared so the
	// layout used for grouping and decoding matches the bytes on NVM.
	st.rewriteMu.RLock()
	defer st.rewriteMu.RUnlock()
	ts = st.loadState()
	needDec := ts.cache.NeedsDecoded()
	missesByBlock := make(map[int][]missRef)
	for _, ref := range missed {
		block := ts.layout.BlockOf(ref.id)
		missesByBlock[block] = append(missesByBlock[block], ref)
	}
	blocks := make([]int, 0, len(missesByBlock))
	for block := range missesByBlock {
		blocks = append(blocks, block)
	}
	sort.Ints(blocks)

	// One batched device read covers every missed block: the reads overlap
	// at the device (and collapse into offset I/O on the file backend)
	// instead of being issued one by one. Small batches reuse pooled
	// buffers so the steady-state miss path stays allocation-free.
	var batch []byte
	switch {
	case len(blocks) == 1:
		bufp := getBlockBuf()
		defer putBlockBuf(bufp)
		batch = *bufp
	case len(blocks) <= batchBufBlocks:
		bufp := batchBufPool.Get().(*[]byte)
		defer batchBufPool.Put(bufp)
		batch = (*bufp)[:len(blocks)*nvm.BlockSize]
	default:
		batch = make([]byte, len(blocks)*nvm.BlockSize)
	}
	abs := make([]int, len(blocks))
	for i, block := range blocks {
		abs[i] = st.blockBase + block
	}
	epoch := st.epoch.Load()
	lat, wait, coalesced, epoch, err := st.readBlocksMiss(device, abs, batch, epoch)
	if err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	st.observeMissIO(lat, wait, tr)

	var members []uint32
	for bi, block := range blocks {
		refs := missesByBlock[block]
		buf := batch[bi*nvm.BlockSize : (bi+1)*nvm.BlockSize]
		if coalesced != nil && coalesced[bi] {
			st.coalescedReads.Inc(uint64(block))
		} else {
			st.blockReads.Inc(uint64(block))
			if tr != nil {
				tr.BlockReads++
			}
		}

		requested := make(map[uint32]struct{}, len(refs))
		for _, ref := range refs {
			if st.overlay != nil {
				// Updated between the pass-1 overlay probe and this block
				// read: serve the overlay bytes and skip the cache fill (the
				// image's decode is stale and the epoch guard cannot catch a
				// delta update, which never touches NVM — see lookup()).
				if oraw := st.overlay.get(ref.id); oraw != nil {
					if outRaw != nil {
						outRaw[ref.pos] = oraw
					} else {
						decStart := time.Now()
						dec := make([]float32, st.dim)
						fp16.DecodeSlice(dec, oraw)
						st.observeDecode(decStart, tr)
						out[ref.pos] = dec
					}
					requested[ref.id] = struct{}{}
					continue
				}
			}
			slot := ts.layout.SlotOf(ref.id)
			rawSlot := buf[slot*st.vecBytes : (slot+1)*st.vecBytes]
			// A raw request copies the fp16 bytes straight off the block
			// image — no decode-encode round trip on what it returns. The
			// decode is skipped entirely when neither the caller (raw mode)
			// nor the engine (fp16 arenas) needs it.
			var dec []float32
			if outRaw == nil || needDec {
				decStart := time.Now()
				dec = make([]float32, st.dim)
				fp16.DecodeSlice(dec, rawSlot)
				st.observeDecode(decStart, tr)
			}
			if outRaw != nil {
				rawCopy := append(make([]byte, 0, st.vecBytes), rawSlot...)
				outRaw[ref.pos] = rawCopy
				st.cacheInsert(ts, ref.id, dec, rawCopy, true, 0, false, epoch)
			} else {
				out[ref.pos] = dec
				st.cacheInsert(ts, ref.id, dec, rawSlot, false, 0, false, epoch)
			}
			requested[ref.id] = struct{}{}
		}
		if ts.prefetch && ts.policy != nil {
			members = ts.layout.BlockMembers(block, members[:0])
			st.admitBlock(ts, buf, epoch, members, func(other uint32) bool {
				_, ok := requested[other]
				return ok
			})
		}
	}
	// Fan the deduplicated miss decodes back out to the repeated positions.
	for _, d := range dupMisses {
		copyPos(d[0], d[1])
	}
	return nil
}

// updateRaw is the write-through (no update log) single-vector update: a
// journaled sub-block patch of the vector's slot. raw must be exactly
// vecBytes long (callers validate). It is also the replica apply path for
// stores without an overlay.
func (st *storeTable) updateRaw(device *nvm.Device, id uint32, raw []byte) error {
	// Serialize concurrent updates of the table: two patches of the same
	// slot must not interleave, and SetRaw/device order must be stable.
	st.updateMu.Lock()
	defer st.updateMu.Unlock()
	if err := st.src.SetRaw(id, raw); err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	ts := st.loadState()

	// Patch exactly the vector's bytes inside its containing block. The
	// earlier read-modify-write here had to fetch the whole block first —
	// and carefully fence against coalesced reads returning a stale image,
	// because writing a stale pre-image back would silently revert every
	// other slot in the block. The patch write needs no pre-image, so the
	// lost-update hazard (and the read, and its device bandwidth) is gone
	// structurally: a vector update is one journal append plus one
	// sub-block write on the file backend.
	block := ts.layout.BlockOf(id)
	slot := ts.layout.SlotOf(id)
	if err := device.WriteBlockPatch(st.blockBase+block, slot*st.vecBytes, raw); err != nil {
		return fmt.Errorf("core: table %q: %w", st.name, err)
	}
	// Bump the epoch before invalidating so that a concurrent miss that
	// read the block before the write cannot re-cache the stale vector.
	st.epoch.Add(1)
	ts.cache.Remove(id)
	return nil
}
