// File-backed store lifecycle: a Config with Backend == BackendFile persists
// the store under Config.DataDir as three files —
//
//	blocks.bnd    the journaled NVM block file (see nvm.FileStore)
//	manifest.bnd  table geometry (names, dims, sizes, block spans) + CRC
//	state.bnd     trained state in the SaveState format
//
// The manifest is written last (via temp file + rename) when a directory is
// initialized, so a half-written data dir is simply re-initialized on the
// next Open. Reopening an initialized directory replays the block file's
// journal, rebuilds the in-memory tables from the block image using the
// persisted layout, and installs the trained state without rewriting a
// single block — a restarted server serves identical vectors without
// retraining.
package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"bandana/internal/layout"
	"bandana/internal/nvm"
	"bandana/internal/table"
)

const (
	// BlocksFileName is the journaled block file inside a data dir.
	BlocksFileName = "blocks.bnd"
	// ManifestFileName is the table-geometry manifest inside a data dir.
	ManifestFileName = "manifest.bnd"
	// StateFileName is the trained-state file inside a data dir.
	StateFileName = "state.bnd"

	manifestMagic   = "BNDMANI1"
	manifestVersion = 1

	// rewriteMarkerName flags an in-progress multi-block layout rewrite
	// (Train / LoadState). Single-block writes are protected by the block
	// file's journal, but a whole-table rewrite is only crash-consistent as
	// a unit: the marker is created before the first block is rewritten and
	// removed after the matching state file is persisted, so a data dir
	// whose previous process died mid-rewrite is refused instead of being
	// decoded with a stale layout.
	rewriteMarkerName = "rewrite.dirty"
)

var manifestCRCTable = crc32.MakeTable(crc32.Castagnoli)

// manifestEntry records one table's geometry and block span.
type manifestEntry struct {
	name         string
	dim          int
	numVectors   int
	blockVectors int
	numBlocks    int
	blockBase    int
}

// DirInitialized reports whether dir holds an initialized file-backed store
// (i.e. a committed manifest).
func DirInitialized(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestFileName))
	return err == nil
}

// openFileBacked opens the file backend: it initializes DataDir on first use
// and reopens it (journal replay + state restore, no retraining) afterwards.
func openFileBacked(cfg Config) (*Store, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("core: backend %q requires DataDir", BackendFile)
	}
	if cfg.Device != nil {
		return nil, fmt.Errorf("core: Device and backend %q are mutually exclusive", BackendFile)
	}
	if DirInitialized(cfg.DataDir) {
		return reopenDir(cfg)
	}
	return initDir(cfg)
}

// initDir writes a fresh data dir: block file, table contents, baseline
// state, and finally the manifest as the commit point.
func initDir(cfg Config) (*Store, error) {
	if len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("core: data dir %q is not initialized and no tables were provided", cfg.DataDir)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create data dir: %w", err)
	}
	spans, totalBlocks := computeSpans(cfg.Tables)
	fs, err := nvm.CreateFileStore(filepath.Join(cfg.DataDir, BlocksFileName), totalBlocks,
		nvm.FileStoreOptions{Sync: cfg.Sync, Direct: cfg.Direct})
	if err != nil {
		return nil, err
	}
	device := nvm.NewDevice(nvm.DeviceConfig{Store: fs, Seed: cfg.Seed})
	s, err := buildStore(cfg, device, true, spans)
	if err != nil {
		device.Close()
		return nil, err
	}
	err = s.writeAllTables()
	if err == nil {
		err = s.Persist() // baseline state: identity layout, no prefetching
	}
	if err == nil {
		err = writeManifest(cfg.DataDir, s, totalBlocks)
	}
	if err != nil {
		s.Close() // stops the I/O scheduler and closes the owned device
		return nil, err
	}
	return s, nil
}

// reopenDir restores a store from an initialized data dir without rewriting
// blocks or retraining.
func reopenDir(cfg Config) (*Store, error) {
	if cfg.Tables != nil {
		return nil, fmt.Errorf("core: data dir %q is already initialized; reopen with Tables == nil (vectors are restored from disk)", cfg.DataDir)
	}
	if _, err := os.Stat(filepath.Join(cfg.DataDir, rewriteMarkerName)); err == nil {
		return nil, fmt.Errorf("core: data dir %q has an interrupted layout rewrite (the previous process died during Train or LoadState); re-initialize the directory or restore it from a backup", cfg.DataDir)
	}
	entries, totalBlocks, err := readManifest(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	fs, err := nvm.OpenFileStore(filepath.Join(cfg.DataDir, BlocksFileName),
		nvm.FileStoreOptions{Sync: cfg.Sync, Direct: cfg.Direct})
	if err != nil {
		return nil, err
	}
	closeOnErr := fs
	defer func() {
		if closeOnErr != nil {
			closeOnErr.Close()
		}
	}()
	if fs.NumBlocks() != totalBlocks {
		return nil, fmt.Errorf("core: manifest expects %d blocks, block file has %d", totalBlocks, fs.NumBlocks())
	}

	// A committed-but-unfinished background migration (the previous process
	// died between the migration record commit and its cleanup) is redone
	// now, before the tables are rebuilt: the staged image is bulk-copied
	// into the table's block range, and the recorded placement overrides
	// whatever the state file says for that table. Unlike the rewrite
	// marker, this never refuses the reopen — the staged image makes the
	// redo exact (see migration.go).
	mig, err := readMigrationRecord(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	migOrder := map[string][]uint32{}
	if mig == nil {
		// A crash between staging the image and committing the record
		// leaves an orphan image; the migration never happened, so drop it.
		_ = os.Remove(filepath.Join(cfg.DataDir, MigrationImageName))
	}
	if mig != nil {
		var entry *manifestEntry
		for i := range entries {
			if entries[i].name == mig.table {
				entry = &entries[i]
				break
			}
		}
		if entry == nil {
			return nil, fmt.Errorf("core: migration record references unknown table %q", mig.table)
		}
		if len(mig.order) != entry.numVectors {
			return nil, fmt.Errorf("core: migration record covers %d vectors, table %q has %d",
				len(mig.order), mig.table, entry.numVectors)
		}
		if err := redoMigration(cfg.DataDir, mig, fs, *entry); err != nil {
			return nil, err
		}
		migOrder[mig.table] = mig.order
	}

	// Trained state (absent on a dir that was initialized but never trained
	// nor persisted — fall back to identity layouts).
	saved := make(map[string]savedTable)
	if f, err := os.Open(filepath.Join(cfg.DataDir, StateFileName)); err == nil {
		entriesSaved, derr := decodeSavedStates(bufio.NewReader(f))
		f.Close()
		if derr != nil {
			return nil, fmt.Errorf("core: read %s: %w", StateFileName, derr)
		}
		for _, sv := range entriesSaved {
			saved[sv.name] = sv
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	// Rebuild each table's vectors from the block image, through the
	// persisted layout (block slot -> vector ID).
	tables := make([]*table.Table, len(entries))
	layouts := make([]*layout.Layout, len(entries))
	buf := make([]byte, nvm.BlockSize)
	var members []uint32
	for i, e := range entries {
		tbl := table.New(e.name, e.numVectors, e.dim)
		l := layout.Identity(e.numVectors, e.blockVectors)
		if ord, ok := migOrder[e.name]; ok {
			// The redone migration's placement wins over the (possibly
			// stale) state file for this table.
			if l, err = layout.FromOrder(ord, e.blockVectors); err != nil {
				return nil, fmt.Errorf("core: table %q: %w", e.name, err)
			}
		} else if sv, ok := saved[e.name]; ok && len(sv.order) > 0 {
			if len(sv.order) != e.numVectors {
				return nil, fmt.Errorf("core: table %q: state covers %d vectors, manifest says %d",
					e.name, len(sv.order), e.numVectors)
			}
			if l, err = layout.FromOrder(sv.order, e.blockVectors); err != nil {
				return nil, fmt.Errorf("core: table %q: %w", e.name, err)
			}
		}
		vb := tbl.VectorBytes()
		for b := 0; b < e.numBlocks; b++ {
			if err := fs.ReadBlock(e.blockBase+b, buf); err != nil {
				return nil, fmt.Errorf("core: table %q block %d: %w", e.name, b, err)
			}
			members = l.BlockMembers(b, members[:0])
			for slot, id := range members {
				if err := tbl.SetRaw(id, buf[slot*vb:(slot+1)*vb]); err != nil {
					return nil, fmt.Errorf("core: table %q block %d: %w", e.name, b, err)
				}
			}
		}
		tables[i] = tbl
		layouts[i] = l
	}

	// Replay the update log's tail over the rebuilt tables and the block
	// image: updates past the compacted-through watermark may exist only in
	// the log (the delta path never wrote their blocks). Idempotent — a crash
	// mid-replay just replays again next open, and records at or below the
	// watermark are never applied (their blocks are already durable, possibly
	// with newer compacted values). The log file is consumed here and
	// recreated fresh by buildStore when the update log is (still) enabled.
	bases := make([]int, len(entries))
	for i, e := range entries {
		bases[i] = e.blockBase
	}
	replayed, logSeq, err := replayUpdateLog(cfg.DataDir, fs, tables, layouts, bases)
	if err != nil {
		return nil, err
	}
	// Floor the reopened store's snapshot seq at the highest seq the update
	// log recorded, starting from the caller's base: an explicit
	// InitialSnapshotSeq override is respected — a replica reopening an
	// imported snapshot must inherit the PRIMARY's seq (the contract in
	// initialSnapshotSeq), not mint a local boot stamp that would outrun
	// every seq the primary will ever send, freezing ApplyReplicatedUpdates'
	// advanceSeq and planting a bogus compacted-through watermark in the new
	// log. Without an override the base is the boot stamp, and the log floor
	// matters because the stamp has one-second granularity: a quick restart
	// could re-issue seqs the previous process already handed out — or
	// report a seq BELOW them, making replicas "re-sync" backward to an
	// image that now contains newer vectors. The replayed image is exactly
	// the state at logSeq, so serving it at that seq is honest; when the
	// base is already larger it keeps winning and replicas full-sync across
	// the restart as before.
	base := initialSnapshotSeq(cfg.InitialSnapshotSeq)
	if logSeq > base {
		base = logSeq
	}
	cfg.InitialSnapshotSeq = base

	cfg.Tables = tables
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	spans, derivedTotal := computeSpans(tables)
	if derivedTotal != totalBlocks {
		return nil, fmt.Errorf("core: manifest geometry is internally inconsistent (%d vs %d blocks)",
			derivedTotal, totalBlocks)
	}
	for i, e := range entries {
		if spans[i].base != e.blockBase || spans[i].blocks != e.numBlocks || spans[i].blockVectors != e.blockVectors {
			return nil, fmt.Errorf("core: table %q: manifest span does not match derived layout", e.name)
		}
	}

	device := nvm.NewDevice(nvm.DeviceConfig{Store: fs, Seed: cfg.Seed})
	s, err := buildStore(cfg, device, true, spans)
	if err != nil {
		return nil, err
	}
	if s.deltaLog != nil {
		s.deltaLog.recovered = int64(replayed)
	}
	// The store owns fs (via the device) from here on: later error paths
	// must close it through s.Close so the I/O scheduler stops too.
	closeOnErr = nil
	// Install the persisted trained state WITHOUT rewriting: the block image
	// on disk already matches the persisted layouts.
	for i, st := range s.tables {
		sv, ok := saved[st.name]
		if !ok {
			continue
		}
		st.mutateState(savedStateMutator(layouts[i], sv))
		if sv.cacheCap > 0 {
			st.resizeCache(sv.cacheCap)
		}
	}
	// Finish a redone migration: persist the state file with the migrated
	// layout, then drop the migration record. A crash anywhere before the
	// record is removed simply redoes the (idempotent) copy next time.
	if mig != nil {
		if _, ok := saved[mig.table]; !ok {
			// No trained state for the migrated table (possible only if the
			// state file was deleted out-of-band): still publish the
			// migrated layout, which is what the blocks now hold.
			idx := s.byName[mig.table]
			s.tables[idx].mutateState(func(ts *tableState) { ts.layout = layouts[idx] })
		}
		if err := s.Persist(); err != nil {
			s.Close()
			return nil, fmt.Errorf("core: persist recovered migration: %w", err)
		}
		if err := removeMigrationFiles(cfg.DataDir); err != nil {
			s.Close()
			return nil, err
		}
		s.recoveredMigration = true
	}
	return s, nil
}

// replayUpdateLog folds a leftover update log into the freshly rebuilt tables
// and the on-disk block image, then consumes the file. Records at or below
// the log's compacted-through watermark are skipped — their effects are
// already durable in the image, possibly overwritten by newer compacted
// values, so re-applying them could regress vectors. Survivor records are
// applied in seq order (later updates of the same vector win) and their
// blocks are rewritten journaled and flushed BEFORE the log is removed, so a
// crash at any point just replays again. Returns how many records were
// applied and the highest seq the log covered (watermark included) — the
// reopened store's snapshot seq must not fall below it.
func replayUpdateLog(dir string, fs *nvm.FileStore, tables []*table.Table, layouts []*layout.Layout, bases []int) (int, uint64, error) {
	path := filepath.Join(dir, UpdateLogFileName)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("core: read update log: %w", err)
	}
	through, recs, err := parseUpdateLog(raw)
	if err != nil {
		return 0, 0, err
	}
	maxSeq := through
	for _, rec := range recs {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	type dirtyBlock struct{ table, block int }
	dirty := make(map[dirtyBlock]struct{})
	applied := 0
	for _, rec := range recs {
		if rec.Seq <= through {
			continue
		}
		if int(rec.Table) >= len(tables) {
			return 0, 0, fmt.Errorf("core: update log references table %d, manifest has %d", rec.Table, len(tables))
		}
		tbl := tables[rec.Table]
		if len(rec.Raw) != tbl.VectorBytes() {
			return 0, 0, fmt.Errorf("core: update log: table %q record carries %d bytes, want %d",
				tbl.Name, len(rec.Raw), tbl.VectorBytes())
		}
		if int(rec.ID) >= tbl.NumVectors() {
			return 0, 0, fmt.Errorf("core: update log: table %q record targets vector %d of %d",
				tbl.Name, rec.ID, tbl.NumVectors())
		}
		if err := tbl.SetRaw(rec.ID, rec.Raw); err != nil {
			return 0, 0, fmt.Errorf("core: update log: table %q: %w", tbl.Name, err)
		}
		dirty[dirtyBlock{int(rec.Table), layouts[rec.Table].BlockOf(rec.ID)}] = struct{}{}
		applied++
	}
	if applied > 0 {
		buf := make([]byte, nvm.BlockSize)
		var members []uint32
		for db := range dirty {
			tbl, l := tables[db.table], layouts[db.table]
			vb := tbl.VectorBytes()
			for i := range buf {
				buf[i] = 0
			}
			members = l.BlockMembers(db.block, members[:0])
			for slot, id := range members {
				vraw, err := tbl.Raw(id)
				if err != nil {
					return 0, 0, fmt.Errorf("core: update log: table %q: %w", tbl.Name, err)
				}
				copy(buf[slot*vb:], vraw)
			}
			if err := fs.WriteBlock(bases[db.table]+db.block, buf); err != nil {
				return 0, 0, fmt.Errorf("core: update log: table %q block %d: %w", tbl.Name, db.block, err)
			}
		}
		if err := fs.Flush(); err != nil {
			return 0, 0, fmt.Errorf("core: update log: %w", err)
		}
	}
	if err := os.Remove(path); err != nil {
		return 0, 0, fmt.Errorf("core: remove replayed update log: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, 0, fmt.Errorf("core: remove replayed update log: %w", err)
	}
	return applied, maxSeq, nil
}

// atomicWriteFile durably replaces dir/name: the payload is written to a
// temp file (via the write callback), fsynced, renamed over the target, and
// the directory entry fsynced — so readers always observe either the old or
// the complete new file, never a partial one. Shared by the manifest, state
// and migration commit points.
func atomicWriteFile(dir, name string, write func(io.Writer) error) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, name))
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so entry mutations (create/rename/remove) are
// durable and ordered with respect to later ones — without it, power loss
// can reorder a state-file rename against a marker removal and reopen a dir
// whose blocks and persisted layout disagree.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// markDirMutation durably creates the rewrite marker before a multi-block
// layout rewrite begins. No-op for mem-backed stores.
func (s *Store) markDirMutation() error {
	if s.dataDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(s.dataDir, rewriteMarkerName))
	if err != nil {
		return fmt.Errorf("core: mark rewrite: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: mark rewrite: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: mark rewrite: %w", err)
	}
	if err := syncDir(s.dataDir); err != nil {
		return fmt.Errorf("core: mark rewrite: %w", err)
	}
	return nil
}

// clearDirMutation removes the rewrite marker once the rewritten blocks and
// the matching state file are both durable.
func (s *Store) clearDirMutation() error {
	if s.dataDir == "" {
		return nil
	}
	if err := os.Remove(filepath.Join(s.dataDir, rewriteMarkerName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: clear rewrite marker: %w", err)
	}
	if err := syncDir(s.dataDir); err != nil {
		return fmt.Errorf("core: clear rewrite marker: %w", err)
	}
	return nil
}

// Persist writes the store's trained state to its data dir (atomically, via
// temp file + rename) and flushes the block file. Train and LoadState call
// it automatically on file-backed stores; call it manually after
// SetAdmissionPolicy or cache-resize changes that should survive a restart.
func (s *Store) Persist() error {
	if err := s.checkWritable(); err != nil {
		return err
	}
	if s.dataDir == "" {
		return fmt.Errorf("core: store was not opened with a data dir")
	}
	if err := atomicWriteFile(s.dataDir, StateFileName, s.SaveState); err != nil {
		return fmt.Errorf("core: persist state: %w", err)
	}
	if err := s.device.Flush(); err != nil {
		return err
	}
	if s.deltaLog != nil {
		// Same durability point for the update log: under the periodic-sync
		// modes, Persist is where "everything so far survives a crash".
		return s.deltaLog.fsync()
	}
	return nil
}

// DataDir returns the persistence directory of a file-backed store ("" for
// the mem backend).
func (s *Store) DataDir() string { return s.dataDir }

// manifestBytes renders the store's table geometry in the manifest.bnd
// format (payload + CRC-32C trailer). Shared by the data-dir commit path and
// the snapshot export, so a streamed snapshot's manifest is byte-identical
// to what initDir would have written.
func manifestBytes(s *Store, totalBlocks int) []byte {
	var payload bytes.Buffer
	payload.WriteString(manifestMagic)
	varint := make([]byte, binary.MaxVarintLen64)
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(varint, v)
		payload.Write(varint[:n])
	}
	writeUvarint(manifestVersion)
	writeUvarint(uint64(len(s.tables)))
	for _, st := range s.tables {
		writeUvarint(uint64(len(st.name)))
		payload.WriteString(st.name)
		writeUvarint(uint64(st.dim))
		writeUvarint(uint64(st.src.NumVectors()))
		writeUvarint(uint64(st.blockVectors))
		writeUvarint(uint64(st.numBlocks))
		writeUvarint(uint64(st.blockBase))
	}
	writeUvarint(uint64(totalBlocks))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), manifestCRCTable))
	payload.Write(crc[:])
	return payload.Bytes()
}

// writeManifest commits the data dir: geometry of every table plus a CRC,
// written via temp file + rename so the manifest is all-or-nothing.
func writeManifest(dir string, s *Store, totalBlocks int) error {
	raw := manifestBytes(s, totalBlocks)
	err := atomicWriteFile(dir, ManifestFileName, func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	})
	if err != nil {
		return fmt.Errorf("core: write manifest: %w", err)
	}
	return nil
}

// readManifest loads and verifies a data dir's manifest.
func readManifest(dir string) ([]manifestEntry, int, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFileName))
	if err != nil {
		return nil, 0, fmt.Errorf("core: read manifest: %w", err)
	}
	return parseManifest(raw)
}

// parseManifest decodes and verifies a manifest.bnd payload.
func parseManifest(raw []byte) ([]manifestEntry, int, error) {
	if len(raw) < len(manifestMagic)+4 {
		return nil, 0, fmt.Errorf("core: manifest too short (%d bytes)", len(raw))
	}
	payload, crc := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(payload, manifestCRCTable) != crc {
		return nil, 0, fmt.Errorf("core: manifest checksum mismatch")
	}
	if string(payload[:len(manifestMagic)]) != manifestMagic {
		return nil, 0, fmt.Errorf("core: bad manifest magic %q", payload[:len(manifestMagic)])
	}
	br := bytes.NewReader(payload[len(manifestMagic):])
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	version, err := readUvarint()
	if err != nil {
		return nil, 0, err
	}
	if version != manifestVersion {
		return nil, 0, fmt.Errorf("core: unsupported manifest version %d", version)
	}
	numTables, err := readUvarint()
	if err != nil {
		return nil, 0, err
	}
	if numTables == 0 || numTables > 1<<16 {
		return nil, 0, fmt.Errorf("core: implausible manifest table count %d", numTables)
	}
	entries := make([]manifestEntry, 0, numTables)
	for i := uint64(0); i < numTables; i++ {
		var e manifestEntry
		nameLen, err := readUvarint()
		if err != nil {
			return nil, 0, err
		}
		if nameLen > 1<<16 {
			return nil, 0, fmt.Errorf("core: implausible manifest name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, 0, err
		}
		e.name = string(name)
		for _, dst := range []*int{&e.dim, &e.numVectors, &e.blockVectors, &e.numBlocks, &e.blockBase} {
			v, err := readUvarint()
			if err != nil {
				return nil, 0, err
			}
			if v > 1<<40 {
				return nil, 0, fmt.Errorf("core: implausible manifest field %d for table %q", v, e.name)
			}
			*dst = int(v)
		}
		if e.dim <= 0 || e.numVectors <= 0 || e.blockVectors <= 0 || e.numBlocks <= 0 {
			return nil, 0, fmt.Errorf("core: manifest table %q has invalid geometry", e.name)
		}
		entries = append(entries, e)
	}
	totalBlocks, err := readUvarint()
	if err != nil {
		return nil, 0, err
	}
	return entries, int(totalBlocks), nil
}
