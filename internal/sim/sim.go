// Package sim replays embedding lookup traces against a physical layout, a
// DRAM cache and an admission policy, and reports the metric the whole paper
// is built around: the number of 4 KB NVM block reads needed to serve the
// trace, expressed as an *effective bandwidth increase* over the baseline
// policy (one block read per missed vector, no prefetching).
//
// The same replay engine, fed with a spatially sampled subset of the
// vectors and a proportionally scaled-down cache, implements the
// "miniature caches" of §4.3.3 that pick the per-table prefetch-admission
// threshold.
package sim

import (
	"fmt"
	"sort"

	"bandana/internal/cache"
	"bandana/internal/layout"
	"bandana/internal/mrc"
	"bandana/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	// Layout maps vectors to NVM blocks.
	Layout *layout.Layout
	// CacheVectors is the DRAM cache capacity in vectors; 0 means
	// unlimited.
	CacheVectors int
	// Policy decides admission of prefetched vectors. Nil means
	// cache.NoPrefetch (the baseline policy).
	Policy cache.AdmissionPolicy
	// Filter, when non-nil, restricts the simulation to the sampled subset
	// of vectors for which it returns true (miniature caches). Lookups to
	// unsampled vectors are skipped entirely and prefetch candidates that
	// are not sampled are ignored.
	Filter func(id uint32) bool
}

// Result summarises one simulation run.
type Result struct {
	Policy             string
	Lookups            int64
	Hits               int64
	Misses             int64
	BlockReads         int64
	PrefetchesAdmitted int64
	PrefetchHits       int64
	HitRate            float64
	// UsefulBytesPerBlockRead is the average number of requested vector
	// bytes served per 4 KB block read, assuming the layout's block size
	// and 128 B vectors; it is a direct measure of effective bandwidth.
	VectorsPerBlockRead float64
}

// Replay runs the simulation over the trace and returns its result.
func Replay(tr *trace.Trace, cfg Config) Result {
	policy := cfg.Policy
	if policy == nil {
		policy = cache.NoPrefetch{}
	}
	c := cache.NewCache(cfg.CacheVectors)
	res := Result{Policy: policy.Name()}

	// prefetched tracks vectors currently cached that were admitted as
	// prefetches and have not yet been requested; used to attribute hits to
	// prefetching.
	prefetched := make(map[uint32]struct{})

	var members []uint32
	for _, q := range tr.Queries {
		for _, id := range q {
			if cfg.Filter != nil && !cfg.Filter(id) {
				continue
			}
			res.Lookups++
			policy.OnAccess(id)
			if c.Touch(id) {
				res.Hits++
				if _, wasPrefetch := prefetched[id]; wasPrefetch {
					res.PrefetchHits++
					delete(prefetched, id)
				}
				continue
			}
			res.Misses++
			res.BlockReads++
			block := cfg.Layout.BlockOf(id)
			c.Insert(id, 0)
			delete(prefetched, id)

			members = cfg.Layout.BlockMembers(block, members[:0])
			for _, other := range members {
				if other == id {
					continue
				}
				if cfg.Filter != nil && !cfg.Filter(other) {
					continue
				}
				if c.Contains(other) {
					continue
				}
				admit, pos := policy.AdmitPrefetch(other)
				if !admit {
					continue
				}
				c.Insert(other, pos)
				prefetched[other] = struct{}{}
				res.PrefetchesAdmitted++
			}
		}
	}
	if res.Lookups > 0 {
		res.HitRate = float64(res.Hits) / float64(res.Lookups)
	}
	if res.BlockReads > 0 {
		res.VectorsPerBlockRead = float64(res.Lookups) / float64(res.BlockReads)
	}
	return res
}

// ReplayBaseline runs the baseline policy (no prefetching) with the same
// layout, cache size and filter.
func ReplayBaseline(tr *trace.Trace, l *layout.Layout, cacheVectors int, filter func(uint32) bool) Result {
	return Replay(tr, Config{Layout: l, CacheVectors: cacheVectors, Policy: cache.NoPrefetch{}, Filter: filter})
}

// EffectiveBandwidthIncrease returns the relative reduction in block reads
// of `policy` over `baseline`: baseline.BlockReads/policy.BlockReads - 1.
// Positive values mean the policy reads fewer blocks for the same workload
// (higher effective bandwidth); negative values mean it reads more.
func EffectiveBandwidthIncrease(policy, baseline Result) float64 {
	if policy.BlockReads == 0 || baseline.BlockReads == 0 {
		return 0
	}
	return float64(baseline.BlockReads)/float64(policy.BlockReads) - 1
}

// Comparison bundles a policy run with its baseline and derived metrics.
type Comparison struct {
	Policy   Result
	Baseline Result
	// EffectiveBandwidthIncrease is the headline metric (e.g. +1.3 = +130%).
	EffectiveBandwidthIncrease float64
}

// Compare runs both the configured policy and the baseline (same cache
// size, no prefetching) and returns the comparison.
func Compare(tr *trace.Trace, cfg Config) Comparison {
	policyRes := Replay(tr, cfg)
	baseRes := ReplayBaseline(tr, cfg.Layout, cfg.CacheVectors, cfg.Filter)
	return Comparison{
		Policy:                     policyRes,
		Baseline:                   baseRes,
		EffectiveBandwidthIncrease: EffectiveBandwidthIncrease(policyRes, baseRes),
	}
}

// FanoutGain computes the effective bandwidth increase of a layout under the
// paper's §4.2 spatial-locality model (Figures 6, 8 and 9): the baseline
// policy issues one 4 KB block read per vector lookup, while the partitioned
// system reads each distinct block only once per query — vectors co-located
// with an already-read vector of the same query are served from the
// prefetched block. The returned value is
//
//	totalLookups / totalFanout - 1,
//
// where fanout is the number of distinct blocks a query touches (Equation 3
// in the paper). This isolates the benefit of physical placement from the
// cross-query caching studied in §4.3.
func FanoutGain(tr *trace.Trace, l *layout.Layout) float64 {
	var lookups, fanout int64
	for _, q := range tr.Queries {
		lookups += int64(len(q))
		fanout += int64(l.Fanout(q))
	}
	if fanout == 0 {
		return 0
	}
	return float64(lookups)/float64(fanout) - 1
}

// TunerConfig configures the miniature-cache threshold search for one table.
type TunerConfig struct {
	Layout *layout.Layout
	// Counts are the per-vector access counts from the SHP training run.
	Counts []uint32
	// CacheVectors is the full cache size being tuned for.
	CacheVectors int
	// SamplingRate is the miniature cache scale (the paper finds 0.001
	// sufficient). A rate >= 1 simulates the full cache (the oracle of
	// Figure 14).
	SamplingRate float64
	// Thresholds are the candidate admission thresholds; defaults to
	// {0, 5, 10, 15, 20}.
	Thresholds []uint32
}

// ThresholdChoice is the outcome of a miniature-cache tuning run.
type ThresholdChoice struct {
	Threshold uint32
	// MiniatureGain is the effective bandwidth increase observed in the
	// miniature simulation at the chosen threshold.
	MiniatureGain float64
	// PerThreshold records the miniature gain of every candidate.
	PerThreshold map[uint32]float64
	// SampledLookups is the number of lookups that survived sampling.
	SampledLookups int64
}

// DefaultThresholds are the candidate admission thresholds explored by the
// tuner, matching the range the paper sweeps in Figure 12 and Table 2.
func DefaultThresholds() []uint32 { return []uint32{0, 5, 10, 15, 20} }

// AdaptiveThresholds derives candidate admission thresholds from the
// distribution of training-time access counts: 0 plus the 50th, 75th, 90th
// and 95th percentiles of the non-zero counts. At the paper's production
// scale these land close to the fixed {5,10,15,20} sweep of Figure 12; at
// smaller scales they stay meaningful instead of filtering out everything.
func AdaptiveThresholds(counts []uint32) []uint32 {
	nonzero := make([]uint32, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			nonzero = append(nonzero, c)
		}
	}
	if len(nonzero) == 0 {
		return DefaultThresholds()
	}
	sort.Slice(nonzero, func(i, j int) bool { return nonzero[i] < nonzero[j] })
	pick := func(q float64) uint32 {
		idx := int(q * float64(len(nonzero)-1))
		return nonzero[idx]
	}
	cand := []uint32{0, pick(0.50), pick(0.75), pick(0.90), pick(0.95)}
	// Deduplicate while preserving order.
	out := cand[:0]
	seen := make(map[uint32]bool, len(cand))
	for _, c := range cand {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// DisablePrefetch is the threshold value the tuner returns when every
// candidate threshold performs worse than not prefetching at all: no access
// count can exceed it, so prefetching is effectively off.
const DisablePrefetch = ^uint32(0)

// minMiniCacheVectors is the smallest miniature cache the tuner will
// simulate; below this the simulation is too small to rank thresholds, so
// the sampling rate is raised (up to running the full cache).
const minMiniCacheVectors = 64

// TuneThreshold simulates one miniature cache per candidate threshold and
// returns the threshold with the highest effective bandwidth increase. If
// every candidate loses to the no-prefetch baseline, it returns
// DisablePrefetch.
func TuneThreshold(tr *trace.Trace, cfg TunerConfig) (ThresholdChoice, error) {
	if cfg.Layout == nil {
		return ThresholdChoice{}, fmt.Errorf("sim: tuner requires a layout")
	}
	if cfg.CacheVectors <= 0 {
		return ThresholdChoice{}, fmt.Errorf("sim: tuner requires a finite cache size")
	}
	thresholds := cfg.Thresholds
	if len(thresholds) == 0 {
		thresholds = AdaptiveThresholds(cfg.Counts)
	}
	rate := cfg.SamplingRate
	if rate <= 0 {
		rate = 0.001
	}
	// Guard against degenerate miniature caches at small scale: raise the
	// sampling rate until the miniature cache holds at least
	// minMiniCacheVectors vectors (or becomes the full cache).
	if rate < 1 && float64(cfg.CacheVectors)*rate < minMiniCacheVectors {
		rate = float64(minMiniCacheVectors) / float64(cfg.CacheVectors)
		if rate > 1 {
			rate = 1
		}
	}
	var filter func(uint32) bool
	miniCache := cfg.CacheVectors
	if rate < 1 {
		// Sample whole *blocks* rather than individual vectors: a vector is
		// simulated iff its NVM block (under the candidate layout) is
		// selected. This keeps the intra-block composition — and therefore
		// the prefetch dynamics the thresholds are being tuned for — intact,
		// while still shrinking the lookup stream and cache by the sampling
		// rate.
		blockFilter := mrc.SampleFilter(rate)
		l := cfg.Layout
		filter = func(id uint32) bool { return blockFilter(uint32(l.BlockOf(id))) }
		miniCache = int(float64(cfg.CacheVectors) * rate)
		if miniCache < 1 {
			miniCache = 1
		}
	}

	baseline := ReplayBaseline(tr, cfg.Layout, miniCache, filter)
	choice := ThresholdChoice{PerThreshold: make(map[uint32]float64, len(thresholds)), SampledLookups: baseline.Lookups}
	best := -1.0
	first := true
	for _, t := range thresholds {
		res := Replay(tr, Config{
			Layout:       cfg.Layout,
			CacheVectors: miniCache,
			Policy:       cache.ThresholdAdmit{Counts: cfg.Counts, Threshold: t},
			Filter:       filter,
		})
		gain := EffectiveBandwidthIncrease(res, baseline)
		choice.PerThreshold[t] = gain
		if first || gain > best {
			best = gain
			choice.Threshold = t
			choice.MiniatureGain = gain
			first = false
		}
	}
	if best < 0 {
		choice.Threshold = DisablePrefetch
		choice.MiniatureGain = 0
	}
	return choice, nil
}
