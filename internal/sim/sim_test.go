package sim

import (
	"testing"

	"bandana/internal/cache"
	"bandana/internal/layout"
	"bandana/internal/mrc"
	"bandana/internal/shp"
	"bandana/internal/trace"
)

// testTrace builds a high-locality synthetic trace plus a small table size
// suitable for fast unit tests.
func testTrace(t *testing.T, numVectors, queries int, locality float64, seed int64) *trace.Trace {
	t.Helper()
	p := trace.Profile{
		Name:               "simtest",
		NumVectors:         numVectors,
		AvgLookups:         24,
		CompulsoryMissFrac: 0.08,
		Locality:           locality,
		CommunitySize:      64,
		ReuseSkew:          3,
		Seed:               seed,
	}
	return trace.GenerateTable(p, queries)
}

// shpLayout trains SHP on the trace and returns the resulting layout.
func shpLayout(t *testing.T, tr *trace.Trace) *layout.Layout {
	t.Helper()
	queries := make([][]uint32, len(tr.Queries))
	for i, q := range tr.Queries {
		queries[i] = q
	}
	res, err := shp.Partition(tr.NumVectors, queries, shp.Options{BlockVectors: 32, Iterations: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.FromOrder(res.Order, 32)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestReplayBaselineCountsBlocksPerMiss(t *testing.T) {
	tr := &trace.Trace{
		TableName:  "t",
		NumVectors: 128,
		Queries:    []trace.Query{{0, 1, 2}, {0, 1, 2}, {64, 65}},
	}
	l := layout.Identity(128, 32)
	res := ReplayBaseline(tr, l, 0, nil)
	if res.Lookups != 8 {
		t.Fatalf("lookups = %d", res.Lookups)
	}
	// Unlimited cache: misses = unique vectors = 5, block reads = 5
	// (baseline reads one block per miss, no prefetch benefit).
	if res.Misses != 5 || res.BlockReads != 5 {
		t.Fatalf("misses=%d blockReads=%d, want 5/5", res.Misses, res.BlockReads)
	}
	if res.Hits != 3 {
		t.Fatalf("hits = %d", res.Hits)
	}
	if res.HitRate <= 0 || res.VectorsPerBlockRead <= 0 {
		t.Fatalf("derived stats missing: %+v", res)
	}
}

func TestReplayWithPrefetchUnlimitedCacheReadsFewerBlocks(t *testing.T) {
	// All lookups hit vectors 0..31 which share one block under identity
	// layout: with prefetching the whole trace costs exactly 1 block read.
	tr := &trace.Trace{
		TableName:  "t",
		NumVectors: 64,
		Queries:    []trace.Query{{0, 5, 9}, {12, 14}, {3, 31}},
	}
	l := layout.Identity(64, 32)
	with := Replay(tr, Config{Layout: l, CacheVectors: 0, Policy: cache.AlwaysAdmit{}})
	if with.BlockReads != 1 {
		t.Fatalf("block reads = %d, want 1", with.BlockReads)
	}
	base := ReplayBaseline(tr, l, 0, nil)
	if base.BlockReads != 7 {
		t.Fatalf("baseline block reads = %d, want 7 (unique vectors)", base.BlockReads)
	}
	if inc := EffectiveBandwidthIncrease(with, base); inc < 5.9 {
		t.Fatalf("effective bandwidth increase = %.2f, want ~6", inc)
	}
	if with.PrefetchesAdmitted == 0 {
		t.Fatalf("prefetches should have been admitted")
	}
	if with.PrefetchHits == 0 {
		t.Fatalf("later lookups should hit prefetched vectors")
	}
}

func TestEffectiveBandwidthIncreaseDegenerate(t *testing.T) {
	if EffectiveBandwidthIncrease(Result{}, Result{}) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
	if EffectiveBandwidthIncrease(Result{BlockReads: 10}, Result{}) != 0 {
		t.Fatal("zero baseline should yield 0")
	}
}

func TestSHPFanoutGainBeatsIdentityLayout(t *testing.T) {
	tr := testTrace(t, 8192, 1500, 0.95, 3)
	train, eval := tr.Split(0.5)
	shpL := shpLayout(t, train)
	idL := layout.Identity(tr.NumVectors, 32)

	shpGain := FanoutGain(eval, shpL)
	idGain := FanoutGain(eval, idL)
	if shpGain <= idGain {
		t.Fatalf("SHP layout fanout gain (%.2f) should beat identity layout (%.2f)", shpGain, idGain)
	}
	if shpGain < 0.3 {
		t.Fatalf("SHP should provide a substantial fanout gain, got %.2f", shpGain)
	}
}

func TestFanoutGainEmptyTrace(t *testing.T) {
	tr := &trace.Trace{TableName: "empty", NumVectors: 64}
	if g := FanoutGain(tr, layout.Identity(64, 32)); g != 0 {
		t.Fatalf("empty trace should have 0 gain, got %g", g)
	}
}

func TestSHPBeatsIdentityWithLimitedCacheAndThreshold(t *testing.T) {
	tr := testTrace(t, 8192, 2000, 0.95, 17)
	train, eval := tr.Split(0.5)
	shpL := shpLayout(t, train)
	idL := layout.Identity(tr.NumVectors, 32)
	counts := train.AccessCounts()
	cacheSize := 400

	shpCmp := Compare(eval, Config{Layout: shpL, CacheVectors: cacheSize,
		Policy: cache.ThresholdAdmit{Counts: counts, Threshold: 1}})
	idCmp := Compare(eval, Config{Layout: idL, CacheVectors: cacheSize,
		Policy: cache.ThresholdAdmit{Counts: counts, Threshold: 1}})
	if shpCmp.EffectiveBandwidthIncrease <= idCmp.EffectiveBandwidthIncrease {
		t.Fatalf("SHP layout (%.2f) should beat identity layout (%.2f) with a limited cache",
			shpCmp.EffectiveBandwidthIncrease, idCmp.EffectiveBandwidthIncrease)
	}
}

func TestNaivePrefetchHurtsWithSmallCache(t *testing.T) {
	// Figure 10's observation: with a small cache, admitting all 32
	// prefetched vectors at the MRU end evicts useful vectors and performs
	// worse than no prefetching at all — on an unpartitioned (identity)
	// layout.
	tr := testTrace(t, 8192, 1200, 0.6, 5)
	idL := layout.Identity(tr.NumVectors, 32)
	cacheSize := 256
	cmp := Compare(tr, Config{Layout: idL, CacheVectors: cacheSize, Policy: cache.AlwaysAdmit{}})
	if cmp.EffectiveBandwidthIncrease > 0.05 {
		t.Fatalf("naive prefetching on an unpartitioned layout with a small cache should not help, got %.2f",
			cmp.EffectiveBandwidthIncrease)
	}
}

func TestThresholdAdmissionBeatsNaiveOnPartitionedLayout(t *testing.T) {
	tr := testTrace(t, 8192, 2000, 0.9, 7)
	train, eval := tr.Split(0.5)
	l := shpLayout(t, train)
	counts := train.AccessCounts()
	cacheSize := 400

	naive := Compare(eval, Config{Layout: l, CacheVectors: cacheSize, Policy: cache.AlwaysAdmit{}})
	thresh := Compare(eval, Config{Layout: l, CacheVectors: cacheSize,
		Policy: cache.ThresholdAdmit{Counts: counts, Threshold: 5}})

	if thresh.EffectiveBandwidthIncrease <= naive.EffectiveBandwidthIncrease {
		t.Fatalf("threshold admission (%.2f) should beat naive admission (%.2f) at small cache sizes",
			thresh.EffectiveBandwidthIncrease, naive.EffectiveBandwidthIncrease)
	}
}

func TestReplayWithFilterSkipsUnsampledLookups(t *testing.T) {
	tr := testTrace(t, 4096, 300, 0.9, 9)
	l := layout.Identity(tr.NumVectors, 32)
	full := ReplayBaseline(tr, l, 100, nil)
	filter := mrc.SampleFilter(0.25)
	sampled := ReplayBaseline(tr, l, 25, filter)
	if sampled.Lookups >= full.Lookups {
		t.Fatalf("sampled lookups %d should be well below full %d", sampled.Lookups, full.Lookups)
	}
	frac := float64(sampled.Lookups) / float64(full.Lookups)
	if frac < 0.05 || frac > 0.6 {
		t.Fatalf("sampled fraction %.2f implausible for 25%% spatial sampling", frac)
	}
}

func TestTuneThresholdErrors(t *testing.T) {
	tr := testTrace(t, 2048, 50, 0.9, 1)
	l := layout.Identity(tr.NumVectors, 32)
	if _, err := TuneThreshold(tr, TunerConfig{Layout: nil, CacheVectors: 10}); err == nil {
		t.Fatal("nil layout should error")
	}
	if _, err := TuneThreshold(tr, TunerConfig{Layout: l, CacheVectors: 0}); err == nil {
		t.Fatal("unlimited cache should error")
	}
}

func TestTuneThresholdPicksBestCandidate(t *testing.T) {
	tr := testTrace(t, 8192, 2000, 0.9, 11)
	train, eval := tr.Split(0.5)
	l := shpLayout(t, train)
	counts := train.AccessCounts()
	cacheSize := 400

	// Full-cache (oracle) tuning: sampling rate 1.
	choice, err := TuneThreshold(eval, TunerConfig{
		Layout: l, Counts: counts, CacheVectors: cacheSize, SamplingRate: 1,
		Thresholds: []uint32{0, 5, 10, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(choice.PerThreshold) != 4 {
		t.Fatalf("expected 4 candidate results, got %d", len(choice.PerThreshold))
	}
	// The chosen threshold must be the argmax of the recorded gains.
	for th, gain := range choice.PerThreshold {
		if gain > choice.MiniatureGain {
			t.Fatalf("threshold %d has gain %.3f above the chosen %.3f", th, gain, choice.MiniatureGain)
		}
	}
	// Evaluating the chosen threshold on the full cache should not be worse
	// than the worst candidate.
	worst := choice.MiniatureGain
	for _, g := range choice.PerThreshold {
		if g < worst {
			worst = g
		}
	}
	if choice.MiniatureGain < worst {
		t.Fatalf("chosen gain below worst candidate")
	}
}

func TestTuneThresholdSampledTracksOracle(t *testing.T) {
	tr := testTrace(t, 16384, 2500, 0.9, 13)
	train, eval := tr.Split(0.4)
	l := shpLayout(t, train)
	counts := train.AccessCounts()
	cacheSize := 800

	oracle, err := TuneThreshold(eval, TunerConfig{Layout: l, Counts: counts, CacheVectors: cacheSize, SamplingRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	mini, err := TuneThreshold(eval, TunerConfig{Layout: l, Counts: counts, CacheVectors: cacheSize, SamplingRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if mini.SampledLookups >= oracle.SampledLookups {
		t.Fatalf("sampled tuner should see fewer lookups")
	}
	// The miniature tuner's chosen threshold, evaluated at full scale, must
	// achieve a gain close to the oracle's best (the paper's Table 2 shows
	// modest degradation at 0.1% sampling; we allow half at 10% sampling on
	// this much smaller workload).
	base := ReplayBaseline(eval, l, cacheSize, nil)
	evalAt := func(th uint32) float64 {
		res := Replay(eval, Config{Layout: l, CacheVectors: cacheSize,
			Policy: cache.ThresholdAdmit{Counts: counts, Threshold: th}})
		return EffectiveBandwidthIncrease(res, base)
	}
	oracleGain := evalAt(oracle.Threshold)
	miniGain := evalAt(mini.Threshold)
	if oracleGain > 0 && miniGain < oracleGain*0.5 {
		t.Fatalf("miniature-cache threshold %d achieves %.3f, oracle threshold %d achieves %.3f",
			mini.Threshold, miniGain, oracle.Threshold, oracleGain)
	}
}

func TestDefaultThresholds(t *testing.T) {
	th := DefaultThresholds()
	if len(th) == 0 || th[0] != 0 {
		t.Fatalf("unexpected default thresholds %v", th)
	}
}

func BenchmarkReplay(b *testing.B) {
	p := trace.Profile{Name: "b", NumVectors: 16384, AvgLookups: 24, CompulsoryMissFrac: 0.08,
		Locality: 0.9, CommunitySize: 64, ReuseSkew: 3, Seed: 1}
	tr := trace.GenerateTable(p, 2000)
	l := layout.Identity(tr.NumVectors, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(tr, Config{Layout: l, CacheVectors: 1000, Policy: cache.AlwaysAdmit{}})
	}
}
