package nvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FileStore is a durable file-backed block store. Unlike MemStore it survives
// process restarts and is not bounded by RAM, which makes the simulated NVM
// device behave like the real thing: embedding tables are written once and
// reopened across runs. With Direct enabled the file is opened O_DIRECT, so
// reads and writes hit the device instead of the kernel page cache — the
// measured I/O is honest, and the kernel stops spending DRAM double-caching
// a block file whose caching this system manages itself.
//
// On-disk layout (format v2; all regions are BlockSize-aligned):
//
//	block 0            superblock: magic, format version, geometry, CRC
//	blocks 1..2        journal head watermark, two alternating slots
//	blocks 3..3+R-1    ring journal region (R = RingBlocks)
//	blocks 3+R..       data blocks 0 .. NumBlocks-1
//
// Every WriteBlock appends one checksummed record to the ring journal (a
// single sequential pwrite), then writes the block in place — 2 pwrites per
// block on the steady state. Records are retired lazily, in bulk, by
// advancing the persisted head watermark once their in-place writes are
// durable (see ringJournal). Open replays the valid record chain from the
// watermark in sequence order, which repairs any torn in-place write; a torn
// append fails its CRC (or breaks the sequence chain) and rolls back to the
// previous block contents. With SyncAlways the file is opened O_SYNC so the
// journal-before-data ordering also holds across power loss; the other modes
// guarantee consistency across process crashes only.
//
// Reads and writes use offset I/O (pread/pwrite) with per-block-stripe
// RW locks, so independent blocks are accessed with no shared lock at all and
// concurrent reads of the same block never block each other.
type FileStore struct {
	f          *os.File
	n          int
	ringBlocks int
	dataOff    int64
	sync       SyncMode
	direct     bool

	ring  *ringJournal
	locks [blockStripes]sync.RWMutex

	dataWrites atomic.Int64
	flushes    atomic.Int64
	recovered  int64

	stopFlush chan struct{}
	flushDone chan struct{}
	closeOnce sync.Once
	closeErr  error

	// Fault injection for crash tests: when armed, the countdown is
	// decremented on every pwrite; the pwrite that reaches zero is cut short
	// (a torn write) and it and every later pwrite fail.
	faultArmed     atomic.Bool
	faultCountdown atomic.Int64

	// ioCheck, when set (tests only), observes every pread/pwrite with the
	// buffer and offset actually handed to the kernel — the hook behind the
	// alignment-invariant property tests and the pwrite-count pinning test.
	ioCheck func(op string, off int64, p []byte)
}

const (
	superMagic = "BNDNVM01"

	// FormatVersion is the on-disk format version written to the superblock.
	// v2 replaced the fixed J-slot journal with the appending ring journal
	// (and added the watermark blocks); v1 files are not readable.
	FormatVersion = 2

	// DefaultRingBlocks sizes the ring journal region (create only). 256
	// blocks = 1 MiB ≈ 128 in-flight block records between retirements.
	DefaultRingBlocks = 256

	// minRingBlocks keeps the ring large enough for a handful of in-flight
	// records plus a wrap pad.
	minRingBlocks = 8

	// DefaultFlushInterval is the SyncPeriodic background flush cadence.
	DefaultFlushInterval = time.Second

	blockStripes = 128

	superblockBytes = 32 // magic(8) version(4) blockSize(4) numBlocks(8) ringBlocks(4) crc(4)

	metaBlocks = 3 // superblock + two watermark slots
)

// ErrBadSuperblock is returned by OpenFileStore when the superblock is
// missing, corrupt, or describes a different geometry than the file holds.
var ErrBadSuperblock = errors.New("nvm: invalid or corrupt superblock")

// ErrVersionMismatch is returned by OpenFileStore when the superblock carries
// an unsupported format version.
var ErrVersionMismatch = errors.New("nvm: unsupported file store format version")

// ErrStoreLocked is returned when another process (or another handle in this
// one) holds the store file open; concurrent openers would interleave
// journal appends and corrupt state, so the second opener fails fast.
var ErrStoreLocked = errors.New("nvm: store file is locked by another process")

var errInjectedFault = errors.New("nvm: injected write fault")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects the durability of a FileStore.
type SyncMode int

const (
	// SyncNone leaves flushing to the OS page cache; Flush forces one.
	SyncNone SyncMode = iota
	// SyncPeriodic flushes in the background every FlushInterval.
	SyncPeriodic
	// SyncAlways opens the file O_SYNC: every journal and data write is
	// durable (and ordered) before the call returns.
	SyncAlways
)

// String returns the flag spelling of the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncNone:
		return "none"
	case SyncPeriodic:
		return "periodic"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// ParseSyncMode parses the flag spelling of a SyncMode ("none", "periodic",
// "always").
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "none", "":
		return SyncNone, nil
	case "periodic":
		return SyncPeriodic, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("nvm: unknown sync mode %q (want none, periodic or always)", s)
}

// FileStoreOptions configures CreateFileStore / OpenFileStore.
type FileStoreOptions struct {
	// RingBlocks is the size of the ring journal region in blocks (create
	// only; an existing file keeps the count in its superblock). Defaults
	// to DefaultRingBlocks.
	RingBlocks int
	// Sync selects the durability mode. Defaults to SyncNone.
	Sync SyncMode
	// FlushInterval is the SyncPeriodic flush cadence. Defaults to
	// DefaultFlushInterval.
	FlushInterval time.Duration
	// Direct requests O_DIRECT (page-cache-bypassing) I/O. It is
	// auto-negotiated: filesystems that reject O_DIRECT (tmpfs, some
	// overlayfs) silently fall back to buffered I/O — check
	// BackendStats().DirectIO for the outcome.
	Direct bool
}

func (o *FileStoreOptions) defaults() {
	if o.RingBlocks <= 0 {
		o.RingBlocks = DefaultRingBlocks
	}
	if o.RingBlocks < minRingBlocks {
		o.RingBlocks = minRingBlocks
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = DefaultFlushInterval
	}
}

func openFlags(mode SyncMode) int {
	flags := os.O_RDWR
	if mode == SyncAlways {
		flags |= os.O_SYNC
	}
	return flags
}

// openStoreFile opens (or creates) the store file, negotiating O_DIRECT and
// taking the exclusive flock. directOn reports whether direct I/O is
// actually in effect after negotiation.
func openStoreFile(path string, opts FileStoreOptions, create bool) (f *os.File, directOn bool, err error) {
	flags := openFlags(opts.Sync)
	if create {
		flags |= os.O_CREATE
	}
	if opts.Direct && directIOAvailable {
		f, err = os.OpenFile(path, flags|directOpenFlag, 0o644)
		if err == nil {
			directOn = true
		} else if !isDirectUnsupported(err) {
			return nil, false, err
		}
	}
	if f == nil {
		f, err = os.OpenFile(path, flags, 0o644)
		if err != nil {
			return nil, false, err
		}
	}
	if err := lockFileExclusive(f); err != nil {
		f.Close()
		if errors.Is(err, ErrStoreLocked) {
			return nil, false, fmt.Errorf("%w: %s", ErrStoreLocked, path)
		}
		return nil, false, fmt.Errorf("nvm: lock store file: %w", err)
	}
	return f, directOn, nil
}

// DirectIOSupported probes whether files in dir can be opened and written
// with O_DIRECT (tmpfs, for one, rejects it). Used by tests and CI to
// skip-with-notice rather than silently fall back.
func DirectIOSupported(dir string) bool {
	if !directIOAvailable {
		return false
	}
	path := filepath.Join(dir, ".bnd-direct-probe")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|directOpenFlag, 0o644)
	if err != nil {
		return false
	}
	defer os.Remove(path)
	defer f.Close()
	bp := GetBlockBuf()
	defer PutBlockBuf(bp)
	buf := *bp
	for i := range buf {
		buf[i] = 0
	}
	_, werr := f.WriteAt(buf, 0)
	return werr == nil
}

// CreateFileStore creates (or overwrites) a journaled file store of numBlocks
// data blocks at path.
func CreateFileStore(path string, numBlocks int, opts FileStoreOptions) (*FileStore, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("nvm: invalid block count %d", numBlocks)
	}
	opts.defaults()
	f, direct, err := openStoreFile(path, opts, true)
	if err != nil {
		return nil, fmt.Errorf("nvm: create file store: %w", err)
	}
	// Truncate to zero first so a recreate over an old store cannot leave
	// stale ring records that a fresh watermark would mistake for its own
	// chain; the regrow punches holes, which read back as zeros.
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: truncate file store: %w", err)
	}
	totalBlocks := metaBlocks + opts.RingBlocks + numBlocks
	if err := f.Truncate(int64(totalBlocks) * BlockSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: size file store: %w", err)
	}
	s := newFileStore(f, numBlocks, opts, direct)
	if err := s.writeSuperblock(); err != nil {
		f.Close()
		return nil, err
	}
	// Initial watermark: generation 1, empty ring at offset 0, first seq 1.
	s.ring.gen = 0
	s.ring.nextSeq = 1
	if err := s.ring.retireAll(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: sync superblock: %w", err)
	}
	s.ring.start()
	return s, nil
}

func (s *FileStore) writeSuperblock() error {
	bp := GetBlockBuf()
	defer PutBlockBuf(bp)
	buf := *bp
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, superMagic)
	binary.LittleEndian.PutUint32(buf[8:], FormatVersion)
	binary.LittleEndian.PutUint32(buf[12:], BlockSize)
	binary.LittleEndian.PutUint64(buf[16:], uint64(s.n))
	binary.LittleEndian.PutUint32(buf[24:], uint32(s.ringBlocks))
	binary.LittleEndian.PutUint32(buf[28:], crc32.Checksum(buf[:28], castagnoli))
	if err := s.writeAt(buf, 0); err != nil {
		return fmt.Errorf("nvm: write superblock: %w", err)
	}
	return nil
}

// OpenFileStore opens an existing journaled file store, validating its
// superblock and replaying any committed-but-not-in-place journal records
// before returning.
func OpenFileStore(path string, opts FileStoreOptions) (*FileStore, error) {
	opts.defaults()
	f, direct, err := openStoreFile(path, opts, false)
	if err != nil {
		if errors.Is(err, ErrStoreLocked) {
			return nil, err
		}
		return nil, fmt.Errorf("nvm: open file store: %w", err)
	}
	// The superblock read must already obey direct-I/O alignment, so read a
	// whole aligned block.
	bp := GetBlockBuf()
	sbuf := *bp
	if _, err := f.ReadAt(sbuf, 0); err != nil {
		PutBlockBuf(bp)
		f.Close()
		return nil, fmt.Errorf("%w: short superblock read: %v", ErrBadSuperblock, err)
	}
	sb := sbuf[:superblockBytes]
	if string(sb[:8]) != superMagic {
		PutBlockBuf(bp)
		f.Close()
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSuperblock, sb[:8])
	}
	if got := crc32.Checksum(sb[:28], castagnoli); got != binary.LittleEndian.Uint32(sb[28:]) {
		PutBlockBuf(bp)
		f.Close()
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSuperblock)
	}
	if v := binary.LittleEndian.Uint32(sb[8:]); v != FormatVersion {
		PutBlockBuf(bp)
		f.Close()
		return nil, fmt.Errorf("%w: file has version %d, this build supports %d",
			ErrVersionMismatch, v, FormatVersion)
	}
	if bs := binary.LittleEndian.Uint32(sb[12:]); bs != BlockSize {
		PutBlockBuf(bp)
		f.Close()
		return nil, fmt.Errorf("%w: file has block size %d, want %d", ErrBadSuperblock, bs, BlockSize)
	}
	numBlocks := int(binary.LittleEndian.Uint64(sb[16:]))
	ringBlocks := int(binary.LittleEndian.Uint32(sb[24:]))
	PutBlockBuf(bp)
	if numBlocks <= 0 || ringBlocks < minRingBlocks {
		f.Close()
		return nil, fmt.Errorf("%w: implausible geometry (%d blocks, %d ring blocks)",
			ErrBadSuperblock, numBlocks, ringBlocks)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := int64(metaBlocks+ringBlocks+numBlocks) * BlockSize; fi.Size() < want {
		f.Close()
		return nil, fmt.Errorf("%w: file is %d bytes, geometry needs %d", ErrBadSuperblock, fi.Size(), want)
	}
	opts.RingBlocks = ringBlocks
	s := newFileStore(f, numBlocks, opts, direct)
	if err := s.replayJournal(); err != nil {
		f.Close()
		return nil, err
	}
	s.ring.start()
	return s, nil
}

// OpenOrCreateFileStore opens path if it holds a valid store and creates it
// otherwise; created reports which happened. An existing store must have
// exactly numBlocks data blocks.
func OpenOrCreateFileStore(path string, numBlocks int, opts FileStoreOptions) (s *FileStore, created bool, err error) {
	if _, statErr := os.Stat(path); statErr == nil {
		s, err = OpenFileStore(path, opts)
		if err != nil {
			return nil, false, err
		}
		if s.NumBlocks() != numBlocks {
			s.Close()
			return nil, false, fmt.Errorf("nvm: existing store has %d blocks, want %d", s.NumBlocks(), numBlocks)
		}
		return s, false, nil
	}
	s, err = CreateFileStore(path, numBlocks, opts)
	return s, true, err
}

// NewFileStore creates (or overwrites) a file-backed store at path with the
// default options. It is shorthand for CreateFileStore.
func NewFileStore(path string, numBlocks int) (*FileStore, error) {
	return CreateFileStore(path, numBlocks, FileStoreOptions{})
}

// ioCheckHook, when non-nil at store construction (tests only), becomes the
// new store's ioCheck observer — the way to watch the I/O of the create and
// open/replay paths, which run before the caller holds the store.
var ioCheckHook func(op string, off int64, p []byte)

func newFileStore(f *os.File, numBlocks int, opts FileStoreOptions, direct bool) *FileStore {
	s := &FileStore{
		ioCheck:    ioCheckHook,
		f:          f,
		n:          numBlocks,
		ringBlocks: opts.RingBlocks,
		dataOff:    int64(metaBlocks+opts.RingBlocks) * BlockSize,
		sync:       opts.Sync,
		direct:     direct,
	}
	s.ring = newRingJournal(s, opts.RingBlocks, int64(metaBlocks)*BlockSize)
	if opts.Sync == SyncPeriodic {
		s.stopFlush = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop(opts.FlushInterval)
	}
	return s
}

// readAt is the single pread choke point. In direct mode an unaligned
// destination is bounced through an aligned pool buffer; the hot read paths
// (core block buffers, iosched batch buffers) are already aligned, so the
// bounce is for stray callers only.
func (s *FileStore) readAt(p []byte, off int64) error {
	if s.direct && !isAligned(p) {
		nb := (len(p) + BlockSize - 1) / BlockSize
		bp := GetBatchBuf(nb)
		defer PutBatchBuf(bp)
		buf := (*bp)[:len(p)]
		if ic := s.ioCheck; ic != nil {
			ic("pread", off, buf)
		}
		if _, err := s.f.ReadAt(buf, off); err != nil {
			return err
		}
		copy(p, buf)
		return nil
	}
	if ic := s.ioCheck; ic != nil {
		ic("pread", off, p)
	}
	_, err := s.f.ReadAt(p, off)
	return err
}

// writeAt is the single pwrite choke point; crash tests inject torn writes
// here. In direct mode an unaligned source is bounced through aligned pool
// buffers in ring-sized chunks (only the bulk-load paths can hit this; the
// journaled write path always writes aligned pool memory).
func (s *FileStore) writeAt(p []byte, off int64) error {
	if s.direct && !isAligned(p) {
		const chunk = 256 * BlockSize
		bp := GetBatchBuf(256)
		defer PutBatchBuf(bp)
		for len(p) > 0 {
			n := len(p)
			if n > chunk {
				n = chunk
			}
			buf := (*bp)[:n]
			copy(buf, p[:n])
			if err := s.writeAtAligned(buf, off); err != nil {
				return err
			}
			p = p[n:]
			off += int64(n)
		}
		return nil
	}
	return s.writeAtAligned(p, off)
}

func (s *FileStore) writeAtAligned(p []byte, off int64) error {
	if ic := s.ioCheck; ic != nil {
		ic("pwrite", off, p)
	}
	if s.faultArmed.Load() {
		left := s.faultCountdown.Add(-1)
		if left < 0 {
			return errInjectedFault
		}
		if left == 0 {
			// Tear the write: persist only a prefix, then fail. Under
			// O_DIRECT the prefix is trimmed to a block boundary (an
			// unaligned tear would be rejected by the kernel, not torn).
			tear := len(p) / 2
			if s.direct {
				tear &^= BlockSize - 1
			}
			if tear > 0 {
				_, _ = s.f.WriteAt(p[:tear], off)
			}
			return errInjectedFault
		}
	}
	_, err := s.f.WriteAt(p, off)
	return err
}

// failAfterWrites arms fault injection (tests only): the n-th pwrite from now
// (1-based) is torn short and fails, as does every write after it.
func (s *FileStore) failAfterWrites(n int) {
	s.faultCountdown.Store(int64(n))
	s.faultArmed.Store(true)
}

// NumBlocks implements BlockStore.
func (s *FileStore) NumBlocks() int { return s.n }

// RingBlocks returns the size of the ring journal region in blocks.
func (s *FileStore) RingBlocks() int { return s.ringBlocks }

// DirectIO reports whether the store is running on O_DIRECT I/O (false when
// the Direct option was refused by the filesystem and the store fell back
// to buffered I/O).
func (s *FileStore) DirectIO() bool { return s.direct }

// ReadBlock implements BlockStore.
func (s *FileStore) ReadBlock(idx int, dst []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(dst) < BlockSize {
		return fmt.Errorf("nvm: destination buffer too small: %d", len(dst))
	}
	lock := &s.locks[idx%blockStripes]
	lock.RLock()
	defer lock.RUnlock()
	return s.readAt(dst[:BlockSize], s.dataOff+int64(idx)*BlockSize)
}

// ReadBlocks implements BlockStore: it reads block idxs[i] into
// dst[i*BlockSize:(i+1)*BlockSize] with one pread per block and no shared
// lock across blocks.
func (s *FileStore) ReadBlocks(idxs []int, dst []byte) error {
	if len(dst) < len(idxs)*BlockSize {
		return fmt.Errorf("nvm: destination buffer too small for %d blocks: %d", len(idxs), len(dst))
	}
	for i, idx := range idxs {
		if err := s.ReadBlock(idx, dst[i*BlockSize:(i+1)*BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlock implements BlockStore: one sequential ring-journal append, then
// one in-place write. A crash at any point either rolls the write back (a
// torn append fails its CRC or breaks the sequence chain) or replays it (a
// valid record REDOes in sequence order) at the next open — the data region
// never keeps a torn block image. Records are retired lazily by the ring
// GC; replaying an already-in-place record rewrites identical bytes, and a
// record made stale by a newer write of the same block is replayed before
// that newer record, so sequence order keeps recovery exact.
func (s *FileStore) WriteBlock(idx int, src []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(src) > BlockSize {
		return fmt.Errorf("nvm: block write of %d bytes exceeds block size", len(src))
	}
	bufp := GetBlockBuf()
	defer PutBlockBuf(bufp)
	buf := *bufp
	copy(buf, src)
	for i := len(src); i < BlockSize; i++ {
		buf[i] = 0
	}

	seq, err := s.ring.append(uint64(idx), buf)
	if err != nil {
		return err
	}

	lock := &s.locks[idx%blockStripes]
	lock.Lock()
	err = s.writeAt(buf, s.dataOff+int64(idx)*BlockSize)
	lock.Unlock()
	if err != nil {
		// The failed pwrite may have torn the block, and the journal record
		// is now the only good copy: mark it failed so it pins the GC head
		// and survives until the next open repairs the block or a later
		// successful write of it supersedes the record. The cost is
		// redo-log semantics — a write whose error the caller observed can
		// still surface after recovery.
		s.ring.fail(seq)
		return fmt.Errorf("nvm: block write: %w", err)
	}
	s.dataWrites.Add(1)
	s.ring.complete(seq)

	// The new image supersedes any failed (pinned) record for this block;
	// tombstoning it unpins the ring GC. Sequence-ordered replay keeps
	// recovery correct either way.
	if err := s.ring.supersedeFailed(uint64(idx), seq); err != nil {
		return err
	}
	return nil
}

// WriteBlockPatch implements PatchWriter: a journaled sub-block write. The
// patch bytes land in the ring as a one-page patch record, then in place as a
// sub-block pwrite (buffered) or an aligned read-modify-write of the
// containing block (direct — O_DIRECT cannot issue sub-page writes). This is
// the single-vector update path: a 128-byte embedding update costs one 4 KB
// journal append plus one tiny in-place write, instead of a block read plus
// two full-page writes. Crash guarantees match WriteBlock — a valid patch
// record REDOes over the block image in sequence order, repairing a torn
// in-place patch; a torn append rolls back.
func (s *FileStore) WriteBlockPatch(idx, off int, p []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if off < 0 || len(p) == 0 || off+len(p) > BlockSize {
		return fmt.Errorf("nvm: patch [%d,%d) outside block", off, off+len(p))
	}

	seq, err := s.ring.append(patchTargetOf(idx, off), p)
	if err != nil {
		return err
	}

	base := s.dataOff + int64(idx)*BlockSize
	lock := &s.locks[idx%blockStripes]
	lock.Lock()
	if s.direct {
		bp := GetBlockBuf()
		buf := *bp
		if err = s.readAt(buf, base); err == nil {
			copy(buf[off:], p)
			err = s.writeAt(buf, base)
		}
		PutBlockBuf(bp)
	} else {
		err = s.writeAt(p, base+int64(off))
	}
	lock.Unlock()
	if err != nil {
		// As in WriteBlock: the record is now the only good copy of these
		// bytes — it pins the GC head until the next open replays it. (A
		// later full-block write of idx supersedes it; a later patch does
		// not, since it may cover different bytes.)
		s.ring.fail(seq)
		return fmt.Errorf("nvm: block patch write: %w", err)
	}
	s.dataWrites.Add(1)
	s.ring.complete(seq)
	return nil
}

// WriteBlockUnjournaled implements BulkWriter: it writes a block in place
// with no write-ahead journal record, which makes bulk loads (initial table
// ingest, whole-table layout rewrites) one pwrite per block instead of two.
// Crash-safety contract: a torn write can surface a mixed block, so callers
// must wrap the load in their own commit point and redo it entirely if
// interrupted. Single-block updates should use WriteBlock.
func (s *FileStore) WriteBlockUnjournaled(idx int, src []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(src) > BlockSize {
		return fmt.Errorf("nvm: block write of %d bytes exceeds block size", len(src))
	}
	bufp := GetBlockBuf()
	defer PutBlockBuf(bufp)
	buf := *bufp
	copy(buf, src)
	for i := len(src); i < BlockSize; i++ {
		buf[i] = 0
	}
	// Any live journal record for this block is stale the moment the bulk
	// bytes land; tombstone first so a crash cannot replay it over them.
	if err := s.ring.supersedeRange(idx, 1); err != nil {
		return err
	}
	lock := &s.locks[idx%blockStripes]
	lock.Lock()
	err := s.writeAt(buf, s.dataOff+int64(idx)*BlockSize)
	lock.Unlock()
	if err != nil {
		return fmt.Errorf("nvm: block write: %w", err)
	}
	return nil
}

// WriteBlocksUnjournaled implements RangeBulkWriter: a contiguous run of
// blocks lands in a single pwrite. To exclude concurrent single-block
// writers it takes every stripe lock the range touches, always in ascending
// stripe order (single-block writers take exactly one stripe lock, so lock
// ordering cannot deadlock). Crash-safety contract matches
// WriteBlockUnjournaled: the caller owns the commit point.
func (s *FileStore) WriteBlocksUnjournaled(base int, src []byte) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("nvm: bulk write of %d bytes is not block-aligned", len(src))
	}
	n := len(src) / BlockSize
	if n == 0 {
		return nil
	}
	if base < 0 || base+n > s.n {
		return fmt.Errorf("nvm: bulk write [%d,%d) out of range [0,%d)", base, base+n, s.n)
	}
	// As in WriteBlockUnjournaled: stale journal records must die before
	// the bulk bytes land. In the common bulk-load case no record targets
	// the range and this issues no I/O.
	if err := s.ring.supersedeRange(base, n); err != nil {
		return err
	}
	stripes := n
	if stripes > blockStripes {
		stripes = blockStripes
	}
	held := make([]int, 0, stripes)
	for i := 0; i < stripes; i++ {
		held = append(held, (base+i)%blockStripes)
	}
	sort.Ints(held)
	for _, st := range held {
		s.locks[st].Lock()
	}
	err := s.writeAt(src, s.dataOff+int64(base)*BlockSize)
	for _, st := range held {
		s.locks[st].Unlock()
	}
	if err != nil {
		return fmt.Errorf("nvm: bulk write: %w", err)
	}
	return nil
}

// replayJournal scans the ring record chain from the persisted watermark and
// REDOes valid block records over the data region in sequence order.
// Applying a record whose in-place write had already completed rewrites
// identical bytes, so replay is idempotent.
func (s *FileStore) replayJournal() error {
	applies, err := s.ring.recover(s.n)
	if err != nil {
		return err
	}
	if len(applies) > 0 {
		// Record payloads sit at +36 bytes inside the aligned ring image,
		// so bounce each through an aligned block buffer for the REDO. Patch
		// records read-modify-write their block: sequence order means the
		// image they patch already includes every earlier record.
		bp := GetBlockBuf()
		buf := *bp
		for _, a := range applies {
			base := s.dataOff + int64(a.target)*BlockSize
			if len(a.data) == BlockSize && a.off == 0 {
				copy(buf, a.data)
			} else {
				if err := s.readAt(buf, base); err != nil {
					PutBlockBuf(bp)
					return fmt.Errorf("nvm: replay block %d: %w", a.target, err)
				}
				copy(buf[a.off:], a.data)
			}
			if err := s.writeAt(buf, base); err != nil {
				PutBlockBuf(bp)
				return fmt.Errorf("nvm: replay block %d: %w", a.target, err)
			}
		}
		PutBlockBuf(bp)
		// Make the replayed blocks durable before retiring their records,
		// so the next open reports only genuinely recovered writes.
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("nvm: sync after replay: %w", err)
		}
	}
	if err := s.ring.retireAll(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("nvm: sync journal watermark: %w", err)
	}
	s.recovered = int64(len(applies))
	return nil
}

// Flush forces buffered writes to stable storage.
func (s *FileStore) Flush() error {
	s.flushes.Add(1)
	return s.f.Sync()
}

func (s *FileStore) flushLoop(interval time.Duration) {
	defer close(s.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.Flush()
		case <-s.stopFlush:
			return
		}
	}
}

// BackendStats implements BackendStatser.
func (s *FileStore) BackendStats() BackendStats {
	return BackendStats{
		Backend:              "file",
		DirectIO:             s.direct,
		JournalWrites:        s.ring.appends.Load(),
		JournalBytesAppended: s.ring.bytesAppended.Load(),
		JournalGCRuns:        s.ring.gcRuns.Load(),
		RingUtilization:      s.ring.utilization(),
		DataWrites:           s.dataWrites.Load(),
		FailedWriteRecords:   s.ring.failedRecs.Load(),
		Flushes:              s.flushes.Load(),
		RecoveredRecords:     s.recovered,
	}
}

// Close flushes, retires completed journal records (a clean shutdown leaves
// nothing to recover) and closes the backing file. It is idempotent.
func (s *FileStore) Close() error {
	s.closeOnce.Do(func() {
		if s.stopFlush != nil {
			close(s.stopFlush)
			<-s.flushDone
		}
		s.ring.stop()
		// Retire whatever is durable; failed records deliberately survive
		// for the next open's repair, and a GC error here only means extra
		// (idempotent) replay work then.
		flushErr := s.ring.gc()
		if err := s.f.Sync(); flushErr == nil {
			flushErr = err
		}
		s.closeErr = s.f.Close()
		if s.closeErr == nil && flushErr != nil {
			s.closeErr = flushErr
		}
	})
	return s.closeErr
}

// ensure FileStore satisfies the optional capability interfaces.
var (
	_ BlockStore     = (*FileStore)(nil)
	_ Flusher        = (*FileStore)(nil)
	_ BulkWriter     = (*FileStore)(nil)
	_ BackendStatser = (*FileStore)(nil)
	_ io.Closer      = (*FileStore)(nil)
)
