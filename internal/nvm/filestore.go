package nvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FileStore is a durable file-backed block store. Unlike MemStore it survives
// process restarts and is not bounded by RAM, which makes the simulated NVM
// device behave like the real thing: embedding tables are written once and
// reopened across runs.
//
// On-disk layout (all regions are BlockSize-aligned):
//
//	block 0                superblock: magic, format version, geometry, CRC
//	blocks 1 .. 2J         journal: J slots of (header block, data block)
//	blocks 2J+1 ..         data blocks 0 .. NumBlocks-1
//
// Every WriteBlock first writes the full 4 KB image and a checksummed header
// to a free journal slot, then writes the block in place. The journal slot is
// only reused after the in-place write completed, so at any instant the
// newest write of a block is either fully in place or fully described by a
// valid journal record. Open replays valid journal records (in sequence
// order) over the data region, which repairs any torn in-place write; a torn
// journal record fails its CRC and is ignored, which rolls the write back to
// the previous block contents. With SyncAlways the file is opened O_SYNC so
// the journal-before-data ordering also holds across power loss; the other
// modes guarantee consistency across process crashes only.
//
// Reads and writes use offset I/O (pread/pwrite) with per-block-stripe
// RW locks, so independent blocks are accessed with no shared lock at all and
// concurrent reads of the same block never block each other.
type FileStore struct {
	f            *os.File
	n            int
	journalSlots int
	dataOff      int64
	sync         SyncMode

	seq       atomic.Uint64
	freeSlots chan int
	// quarantined[slot] marks a slot whose record must survive until its
	// target block is written successfully again or the next open repairs
	// it: the write's in-place (or retire) pwrite failed, so the record is
	// the authoritative copy. Quarantined slots are not recycled and
	// clearJournal leaves them alone; a later successful write of the same
	// block destroys the now-stale record and returns the slot to the pool
	// (releaseQuarantined).
	quarantined []atomic.Bool
	quarTargets []int // target block per quarantined slot
	quarCount   atomic.Int64
	quarMu      sync.Mutex
	locks       [blockStripes]sync.RWMutex

	journalWrites atomic.Int64
	flushes       atomic.Int64
	recovered     int64

	stopFlush chan struct{}
	flushDone chan struct{}
	closeOnce sync.Once
	closeErr  error

	// Fault injection for crash tests: when armed, the countdown is
	// decremented on every pwrite; the pwrite that reaches zero is cut short
	// (a torn write) and it and every later pwrite fail.
	faultArmed     atomic.Bool
	faultCountdown atomic.Int64
}

const (
	superMagic   = "BNDNVM01"
	journalMagic = "BNDJRNL1"

	// FormatVersion is the on-disk format version written to the superblock.
	FormatVersion = 1

	// DefaultJournalSlots bounds how many block writes can be in flight at
	// once; each slot costs two blocks of file space.
	DefaultJournalSlots = 16

	// DefaultFlushInterval is the SyncPeriodic background flush cadence.
	DefaultFlushInterval = time.Second

	blockStripes = 128

	superblockBytes = 32 // magic(8) version(4) blockSize(4) numBlocks(8) slots(4) crc(4)
	journalHdrBytes = 32 // magic(8) seq(8) target(8) dataCRC(4) crc(4)
)

// ErrBadSuperblock is returned by OpenFileStore when the superblock is
// missing, corrupt, or describes a different geometry than the file holds.
var ErrBadSuperblock = errors.New("nvm: invalid or corrupt superblock")

// ErrVersionMismatch is returned by OpenFileStore when the superblock carries
// an unsupported format version.
var ErrVersionMismatch = errors.New("nvm: unsupported file store format version")

var errInjectedFault = errors.New("nvm: injected write fault")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects the durability of a FileStore.
type SyncMode int

const (
	// SyncNone leaves flushing to the OS page cache; Flush forces one.
	SyncNone SyncMode = iota
	// SyncPeriodic flushes in the background every FlushInterval.
	SyncPeriodic
	// SyncAlways opens the file O_SYNC: every journal and data write is
	// durable (and ordered) before the call returns.
	SyncAlways
)

// String returns the flag spelling of the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncNone:
		return "none"
	case SyncPeriodic:
		return "periodic"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// ParseSyncMode parses the flag spelling of a SyncMode ("none", "periodic",
// "always").
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "none", "":
		return SyncNone, nil
	case "periodic":
		return SyncPeriodic, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("nvm: unknown sync mode %q (want none, periodic or always)", s)
}

// FileStoreOptions configures CreateFileStore / OpenFileStore.
type FileStoreOptions struct {
	// JournalSlots is the number of write-ahead journal slots (create only;
	// an existing file keeps the count in its superblock). Defaults to
	// DefaultJournalSlots.
	JournalSlots int
	// Sync selects the durability mode. Defaults to SyncNone.
	Sync SyncMode
	// FlushInterval is the SyncPeriodic flush cadence. Defaults to
	// DefaultFlushInterval.
	FlushInterval time.Duration
}

func (o *FileStoreOptions) defaults() {
	if o.JournalSlots <= 0 {
		o.JournalSlots = DefaultJournalSlots
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = DefaultFlushInterval
	}
}

func openFlags(mode SyncMode) int {
	flags := os.O_RDWR
	if mode == SyncAlways {
		flags |= os.O_SYNC
	}
	return flags
}

// CreateFileStore creates (or overwrites) a journaled file store of numBlocks
// data blocks at path.
func CreateFileStore(path string, numBlocks int, opts FileStoreOptions) (*FileStore, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("nvm: invalid block count %d", numBlocks)
	}
	opts.defaults()
	f, err := os.OpenFile(path, openFlags(opts.Sync)|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nvm: create file store: %w", err)
	}
	totalBlocks := 1 + 2*opts.JournalSlots + numBlocks
	if err := f.Truncate(int64(totalBlocks) * BlockSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: size file store: %w", err)
	}
	sb := make([]byte, superblockBytes)
	copy(sb, superMagic)
	binary.LittleEndian.PutUint32(sb[8:], FormatVersion)
	binary.LittleEndian.PutUint32(sb[12:], BlockSize)
	binary.LittleEndian.PutUint64(sb[16:], uint64(numBlocks))
	binary.LittleEndian.PutUint32(sb[24:], uint32(opts.JournalSlots))
	binary.LittleEndian.PutUint32(sb[28:], crc32.Checksum(sb[:28], castagnoli))
	if _, err := f.WriteAt(sb, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: write superblock: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: sync superblock: %w", err)
	}
	return newFileStore(f, numBlocks, opts), nil
}

// OpenFileStore opens an existing journaled file store, validating its
// superblock and replaying any committed-but-not-in-place journal records
// before returning.
func OpenFileStore(path string, opts FileStoreOptions) (*FileStore, error) {
	opts.defaults()
	f, err := os.OpenFile(path, openFlags(opts.Sync), 0o644)
	if err != nil {
		return nil, fmt.Errorf("nvm: open file store: %w", err)
	}
	sb := make([]byte, superblockBytes)
	if _, err := f.ReadAt(sb, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short superblock read: %v", ErrBadSuperblock, err)
	}
	if string(sb[:8]) != superMagic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSuperblock, sb[:8])
	}
	if got := crc32.Checksum(sb[:28], castagnoli); got != binary.LittleEndian.Uint32(sb[28:]) {
		f.Close()
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSuperblock)
	}
	if v := binary.LittleEndian.Uint32(sb[8:]); v != FormatVersion {
		f.Close()
		return nil, fmt.Errorf("%w: file has version %d, this build supports %d",
			ErrVersionMismatch, v, FormatVersion)
	}
	if bs := binary.LittleEndian.Uint32(sb[12:]); bs != BlockSize {
		f.Close()
		return nil, fmt.Errorf("%w: file has block size %d, want %d", ErrBadSuperblock, bs, BlockSize)
	}
	numBlocks := int(binary.LittleEndian.Uint64(sb[16:]))
	slots := int(binary.LittleEndian.Uint32(sb[24:]))
	if numBlocks <= 0 || slots <= 0 {
		f.Close()
		return nil, fmt.Errorf("%w: implausible geometry (%d blocks, %d journal slots)",
			ErrBadSuperblock, numBlocks, slots)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := int64(1+2*slots+numBlocks) * BlockSize; fi.Size() < want {
		f.Close()
		return nil, fmt.Errorf("%w: file is %d bytes, geometry needs %d", ErrBadSuperblock, fi.Size(), want)
	}
	opts.JournalSlots = slots
	s := newFileStore(f, numBlocks, opts)
	if err := s.replayJournal(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenOrCreateFileStore opens path if it holds a valid store and creates it
// otherwise; created reports which happened. An existing store must have
// exactly numBlocks data blocks.
func OpenOrCreateFileStore(path string, numBlocks int, opts FileStoreOptions) (s *FileStore, created bool, err error) {
	if _, statErr := os.Stat(path); statErr == nil {
		s, err = OpenFileStore(path, opts)
		if err != nil {
			return nil, false, err
		}
		if s.NumBlocks() != numBlocks {
			s.Close()
			return nil, false, fmt.Errorf("nvm: existing store has %d blocks, want %d", s.NumBlocks(), numBlocks)
		}
		return s, false, nil
	}
	s, err = CreateFileStore(path, numBlocks, opts)
	return s, true, err
}

// NewFileStore creates (or overwrites) a file-backed store at path with the
// default options. It is shorthand for CreateFileStore.
func NewFileStore(path string, numBlocks int) (*FileStore, error) {
	return CreateFileStore(path, numBlocks, FileStoreOptions{})
}

func newFileStore(f *os.File, numBlocks int, opts FileStoreOptions) *FileStore {
	s := &FileStore{
		f:            f,
		n:            numBlocks,
		journalSlots: opts.JournalSlots,
		dataOff:      int64(1+2*opts.JournalSlots) * BlockSize,
		sync:         opts.Sync,
		freeSlots:    make(chan int, opts.JournalSlots),
		quarantined:  make([]atomic.Bool, opts.JournalSlots),
		quarTargets:  make([]int, opts.JournalSlots),
	}
	for i := 0; i < opts.JournalSlots; i++ {
		s.freeSlots <- i
	}
	if opts.Sync == SyncPeriodic {
		s.stopFlush = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop(opts.FlushInterval)
	}
	return s
}

func (s *FileStore) journalHdrOff(slot int) int64  { return int64(1+2*slot) * BlockSize }
func (s *FileStore) journalDataOff(slot int) int64 { return int64(2+2*slot) * BlockSize }

// writeAt is the single pwrite choke point; crash tests inject torn writes
// here.
func (s *FileStore) writeAt(p []byte, off int64) error {
	if s.faultArmed.Load() {
		left := s.faultCountdown.Add(-1)
		if left < 0 {
			return errInjectedFault
		}
		if left == 0 {
			// Tear the write: persist only a prefix, then fail.
			_, _ = s.f.WriteAt(p[:len(p)/2], off)
			return errInjectedFault
		}
	}
	_, err := s.f.WriteAt(p, off)
	return err
}

// failAfterWrites arms fault injection (tests only): the n-th pwrite from now
// (1-based) is torn short and fails, as does every write after it.
func (s *FileStore) failAfterWrites(n int) {
	s.faultCountdown.Store(int64(n))
	s.faultArmed.Store(true)
}

// quarantineSlot parks a slot whose record must outlive this process's
// journal lifecycle (see the field comment).
func (s *FileStore) quarantineSlot(slot, target int) {
	s.quarMu.Lock()
	s.quarTargets[slot] = target
	s.quarantined[slot].Store(true)
	s.quarCount.Add(1)
	s.quarMu.Unlock()
}

// releaseQuarantined destroys any quarantined records targeting block and
// returns their slots to the pool. Called after a successful write of that
// block (journaled or bulk): the new image supersedes the quarantined one,
// which must not be replayed over it at the next open.
func (s *FileStore) releaseQuarantined(block int) error {
	if s.quarCount.Load() == 0 {
		return nil
	}
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	var zero [8]byte
	for slot := 0; slot < s.journalSlots; slot++ {
		if !s.quarantined[slot].Load() || s.quarTargets[slot] != block {
			continue
		}
		if _, err := s.f.WriteAt(zero[:], s.journalHdrOff(slot)); err != nil {
			return fmt.Errorf("nvm: retire quarantined slot %d: %w", slot, err)
		}
		s.quarantined[slot].Store(false)
		s.quarCount.Add(-1)
		s.freeSlots <- slot // buffered to journalSlots; never blocks
	}
	return nil
}

// NumBlocks implements BlockStore.
func (s *FileStore) NumBlocks() int { return s.n }

// JournalSlots returns the number of write-ahead journal slots.
func (s *FileStore) JournalSlots() int { return s.journalSlots }

// ReadBlock implements BlockStore.
func (s *FileStore) ReadBlock(idx int, dst []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(dst) < BlockSize {
		return fmt.Errorf("nvm: destination buffer too small: %d", len(dst))
	}
	lock := &s.locks[idx%blockStripes]
	lock.RLock()
	defer lock.RUnlock()
	_, err := s.f.ReadAt(dst[:BlockSize], s.dataOff+int64(idx)*BlockSize)
	return err
}

// ReadBlocks implements BlockStore: it reads block idxs[i] into
// dst[i*BlockSize:(i+1)*BlockSize] with one pread per block and no shared
// lock across blocks.
func (s *FileStore) ReadBlocks(idxs []int, dst []byte) error {
	if len(dst) < len(idxs)*BlockSize {
		return fmt.Errorf("nvm: destination buffer too small for %d blocks: %d", len(idxs), len(dst))
	}
	for i, idx := range idxs {
		if err := s.ReadBlock(idx, dst[i*BlockSize:(i+1)*BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlock implements BlockStore: journal first, then write in place,
// then retire the journal record. The slot is held until the record is
// retired, so a crash at any point either rolls the write back (torn
// journal record) or replays it (valid record) on the next open — the data
// region never keeps a torn block image. Retiring the record on completion
// is what makes this sound: at most the single in-flight write per block
// can have a live record, so recovery can never replay a stale image over
// bytes written later (by a newer journaled write or by the bulk
// WriteBlockUnjournaled path).
func (s *FileStore) WriteBlock(idx int, src []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(src) > BlockSize {
		return fmt.Errorf("nvm: block write of %d bytes exceeds block size", len(src))
	}
	bufp := GetBlockBuf()
	defer PutBlockBuf(bufp)
	buf := *bufp
	copy(buf, src)
	for i := len(src); i < BlockSize; i++ {
		buf[i] = 0
	}

	// Acquire a journal slot. If every slot is quarantined the pool can
	// only be replenished by a successful write, which needs a slot — fail
	// instead of parking forever on a wedged store. The periodic re-check
	// (rather than a single check before blocking) closes the race where
	// the last in-flight writer quarantines its slot after we started
	// waiting.
	var slot int
	for acquired := false; !acquired; {
		select {
		case slot = <-s.freeSlots:
			acquired = true
		case <-time.After(50 * time.Millisecond):
			if s.quarCount.Load() >= int64(s.journalSlots) {
				return fmt.Errorf("nvm: all %d journal slots quarantined by failed writes; reopen the store to repair", s.journalSlots)
			}
		}
	}
	recycle := true
	defer func() {
		if recycle {
			s.freeSlots <- slot
		}
	}()
	seq := s.seq.Add(1)

	var hdr [journalHdrBytes]byte
	copy(hdr[:], journalMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(idx))
	binary.LittleEndian.PutUint32(hdr[24:], crc32.Checksum(buf, castagnoli))
	binary.LittleEndian.PutUint32(hdr[28:], crc32.Checksum(hdr[:28], castagnoli))

	// Journal record: data before header, so a valid header implies valid
	// data (modulo the CRC re-check at replay).
	if err := s.writeAt(buf, s.journalDataOff(slot)); err != nil {
		return fmt.Errorf("nvm: journal write: %w", err)
	}
	if err := s.writeAt(hdr[:], s.journalHdrOff(slot)); err != nil {
		return fmt.Errorf("nvm: journal write: %w", err)
	}
	s.journalWrites.Add(1)

	lock := &s.locks[idx%blockStripes]
	lock.Lock()
	err := s.writeAt(buf, s.dataOff+int64(idx)*BlockSize)
	lock.Unlock()
	if err != nil {
		// The failed pwrite may have torn the block, and the journal record
		// is now the only good copy: quarantine the slot so the record
		// survives until the next open repairs the block or a later
		// successful write of it supersedes the record. The cost is
		// redo-log semantics — a write whose error the caller observed can
		// still surface after recovery — and one parked slot meanwhile.
		s.quarantineSlot(slot, idx)
		recycle = false
		return fmt.Errorf("nvm: block write: %w", err)
	}

	// The new image supersedes any quarantined record for this block; that
	// record must not be replayed over it at the next open. On failure our
	// own live record joins the quarantine (it matches the in-place bytes,
	// so replaying it is harmless until a later write supersedes it too).
	if err := s.releaseQuarantined(idx); err != nil {
		s.quarantineSlot(slot, idx)
		recycle = false
		return err
	}

	// The block image is in place: retire the record by destroying the
	// header magic. A crash before (or a tear during) this write leaves a
	// record that replays the exact bytes already in place — idempotent. On
	// failure the live record is quarantined like a torn write: replaying
	// it is harmless now, but it would become stale after a later write of
	// this block, so it must stay under quarantine bookkeeping.
	var dead [8]byte
	if err := s.writeAt(dead[:], s.journalHdrOff(slot)); err != nil {
		s.quarantineSlot(slot, idx)
		recycle = false
		return fmt.Errorf("nvm: journal retire: %w", err)
	}
	return nil
}

// WriteBlockUnjournaled implements BulkWriter: it writes a block in place
// with no write-ahead journal record, which makes bulk loads (initial table
// ingest, whole-table layout rewrites) one pwrite per block instead of
// three. Crash-safety contract: a torn write can surface a mixed block, so
// callers must wrap the load in their own commit point and redo it entirely
// if interrupted. Single-block updates should use WriteBlock.
func (s *FileStore) WriteBlockUnjournaled(idx int, src []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(src) > BlockSize {
		return fmt.Errorf("nvm: block write of %d bytes exceeds block size", len(src))
	}
	bufp := GetBlockBuf()
	defer PutBlockBuf(bufp)
	buf := *bufp
	copy(buf, src)
	for i := len(src); i < BlockSize; i++ {
		buf[i] = 0
	}
	lock := &s.locks[idx%blockStripes]
	lock.Lock()
	err := s.writeAt(buf, s.dataOff+int64(idx)*BlockSize)
	lock.Unlock()
	if err != nil {
		return fmt.Errorf("nvm: block write: %w", err)
	}
	// As in WriteBlock: the new image supersedes any quarantined record.
	return s.releaseQuarantined(idx)
}

// WriteBlocksUnjournaled implements RangeBulkWriter: a contiguous run of
// blocks lands in a single pwrite. To exclude concurrent single-block
// writers it takes every stripe lock the range touches, always in ascending
// stripe order (single-block writers take exactly one stripe lock, so lock
// ordering cannot deadlock). Crash-safety contract matches
// WriteBlockUnjournaled: the caller owns the commit point.
func (s *FileStore) WriteBlocksUnjournaled(base int, src []byte) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("nvm: bulk write of %d bytes is not block-aligned", len(src))
	}
	n := len(src) / BlockSize
	if n == 0 {
		return nil
	}
	if base < 0 || base+n > s.n {
		return fmt.Errorf("nvm: bulk write [%d,%d) out of range [0,%d)", base, base+n, s.n)
	}
	stripes := n
	if stripes > blockStripes {
		stripes = blockStripes
	}
	held := make([]int, 0, stripes)
	for i := 0; i < stripes; i++ {
		held = append(held, (base+i)%blockStripes)
	}
	sort.Ints(held)
	for _, st := range held {
		s.locks[st].Lock()
	}
	err := s.writeAt(src, s.dataOff+int64(base)*BlockSize)
	for _, st := range held {
		s.locks[st].Unlock()
	}
	if err != nil {
		return fmt.Errorf("nvm: bulk write: %w", err)
	}
	// The new images supersede any quarantined records for these blocks.
	for b := base; b < base+n; b++ {
		if err := s.releaseQuarantined(b); err != nil {
			return err
		}
	}
	return nil
}

// replayJournal scans every journal slot and re-applies valid records to the
// data region in sequence order. Applying a record whose in-place write had
// already completed rewrites identical bytes, so replay is idempotent.
func (s *FileStore) replayJournal() error {
	type record struct {
		seq    uint64
		target int
		data   []byte
	}
	var records []record
	hdr := make([]byte, journalHdrBytes)
	maxSeq := uint64(0)
	for slot := 0; slot < s.journalSlots; slot++ {
		if _, err := s.f.ReadAt(hdr, s.journalHdrOff(slot)); err != nil {
			return fmt.Errorf("nvm: read journal slot %d: %w", slot, err)
		}
		if string(hdr[:8]) != journalMagic {
			continue // never used (or torn header magic)
		}
		if crc32.Checksum(hdr[:28], castagnoli) != binary.LittleEndian.Uint32(hdr[28:]) {
			continue // torn header: the write never reached the data region
		}
		seq := binary.LittleEndian.Uint64(hdr[8:])
		target := binary.LittleEndian.Uint64(hdr[16:])
		if seq > maxSeq {
			maxSeq = seq
		}
		if target >= uint64(s.n) {
			continue
		}
		data := make([]byte, BlockSize)
		if _, err := s.f.ReadAt(data, s.journalDataOff(slot)); err != nil {
			return fmt.Errorf("nvm: read journal slot %d: %w", slot, err)
		}
		if crc32.Checksum(data, castagnoli) != binary.LittleEndian.Uint32(hdr[24:]) {
			continue // torn data under a stale header: already superseded
		}
		records = append(records, record{seq: seq, target: int(target), data: data})
	}
	sort.Slice(records, func(i, j int) bool { return records[i].seq < records[j].seq })
	for _, r := range records {
		if _, err := s.f.WriteAt(r.data, s.dataOff+int64(r.target)*BlockSize); err != nil {
			return fmt.Errorf("nvm: replay block %d: %w", r.target, err)
		}
	}
	if len(records) > 0 {
		// Make the replayed blocks durable, then retire the records so the
		// next open reports only genuinely recovered writes.
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("nvm: sync after replay: %w", err)
		}
		if err := s.clearJournal(); err != nil {
			return err
		}
	}
	s.seq.Store(maxSeq)
	s.recovered = int64(len(records))
	return nil
}

// clearJournal invalidates every non-quarantined journal slot (by zeroing
// the header magic) and syncs. Callers must ensure all in-place block writes
// the journal protects are durable first; quarantined slots hold the only
// good copy of a block whose in-place write failed and must survive for the
// next open's replay.
func (s *FileStore) clearJournal() error {
	zero := make([]byte, 8)
	for slot := 0; slot < s.journalSlots; slot++ {
		if s.quarantined[slot].Load() {
			continue
		}
		if _, err := s.f.WriteAt(zero, s.journalHdrOff(slot)); err != nil {
			return fmt.Errorf("nvm: clear journal slot %d: %w", slot, err)
		}
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("nvm: sync journal clear: %w", err)
	}
	return nil
}

// Flush forces buffered writes to stable storage.
func (s *FileStore) Flush() error {
	s.flushes.Add(1)
	return s.f.Sync()
}

func (s *FileStore) flushLoop(interval time.Duration) {
	defer close(s.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.Flush()
		case <-s.stopFlush:
			return
		}
	}
}

// BackendStats implements BackendStatser.
func (s *FileStore) BackendStats() BackendStats {
	return BackendStats{
		Backend:          "file",
		JournalWrites:    s.journalWrites.Load(),
		Flushes:          s.flushes.Load(),
		RecoveredRecords: s.recovered,
	}
}

// Close flushes, retires the journal (a clean shutdown leaves nothing to
// recover) and closes the backing file. It is idempotent.
func (s *FileStore) Close() error {
	s.closeOnce.Do(func() {
		if s.stopFlush != nil {
			close(s.stopFlush)
			<-s.flushDone
		}
		flushErr := s.f.Sync()
		if flushErr == nil {
			flushErr = s.clearJournal()
		}
		s.closeErr = s.f.Close()
		if s.closeErr == nil && flushErr != nil {
			s.closeErr = flushErr
		}
	})
	return s.closeErr
}

// blockBufPool recycles BlockSize scratch buffers for this package and its
// callers (see GetBlockBuf).
var blockBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, BlockSize)
		return &b
	},
}

// GetBlockBuf returns a pooled BlockSize scratch buffer; release it with
// PutBlockBuf. Contents are undefined.
func GetBlockBuf() *[]byte { return blockBufPool.Get().(*[]byte) }

// PutBlockBuf returns a buffer obtained from GetBlockBuf to the pool.
func PutBlockBuf(b *[]byte) { blockBufPool.Put(b) }

// ensure FileStore satisfies the optional capability interfaces.
var (
	_ BlockStore     = (*FileStore)(nil)
	_ Flusher        = (*FileStore)(nil)
	_ BulkWriter     = (*FileStore)(nil)
	_ BackendStatser = (*FileStore)(nil)
	_ io.Closer      = (*FileStore)(nil)
)
