//go:build linux

package nvm

import (
	"errors"
	"os"
	"syscall"
)

// directIOAvailable reports whether this platform can open files O_DIRECT at
// all. Individual filesystems may still reject it (tmpfs does); openDirect
// handles that per file.
const directIOAvailable = true

// directOpenFlag is OR'd into the open(2) flags to bypass the page cache.
const directOpenFlag = syscall.O_DIRECT

// isDirectUnsupported reports whether err is the filesystem saying "no
// O_DIRECT here" (tmpfs and some overlayfs configurations return EINVAL,
// a few network filesystems ENOTSUP) as opposed to a real failure.
func isDirectUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EOPNOTSUPP)
}

// lockFileExclusive takes a non-blocking exclusive flock on f. The lock
// belongs to the open file description, so a second open of the same path —
// by another process or this one — fails until the first is closed.
func lockFileExclusive(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return ErrStoreLocked
	}
	return err
}
