//go:build !linux

package nvm

import "os"

// directIOAvailable: non-Linux platforms fall back to buffered I/O (macOS
// would need F_NOCACHE, Windows FILE_FLAG_NO_BUFFERING; neither is a target
// of this reproduction).
const directIOAvailable = false

const directOpenFlag = 0

func isDirectUnsupported(err error) bool { return false }

// lockFileExclusive is a no-op where flock is unavailable; single-opener
// discipline is then up to the operator.
func lockFileExclusive(f *os.File) error { return nil }
