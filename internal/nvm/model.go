// Package nvm simulates a block-addressable Non-Volatile Memory device.
//
// The paper uses a 375 GB NVM block device (measured with Fio) whose key
// properties are:
//
//   - reads are served in 4 KB blocks: reading a 128 B embedding vector
//     costs a full block read, so the "effective bandwidth" of naive vector
//     reads is ~3% of the device bandwidth (§4.1, Figure 5);
//   - read bandwidth saturates around 2.3 GB/s at queue depth 8, more than
//     30x lower than DRAM, with mean/P99 latency growing with queue depth
//     (Figure 2);
//   - endurance is limited to roughly 30 drive writes per day.
//
// This package reproduces those externally visible properties with a
// calibrated performance model plus an actual in-memory (or file-backed)
// block store, so the rest of Bandana can be built and measured against it
// exactly as it would be against the hardware.
package nvm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// BlockSize is the native read granularity of the simulated device in bytes.
// All reads smaller than a block still occupy a full block of device
// bandwidth, which is the central constraint Bandana works around.
const BlockSize = 4096

// CalibrationPoint anchors the performance model at one queue depth. Values
// are taken from the paper's Figure 2 (4 concurrent jobs, libaio, 4 KB
// random reads on a 375 GB device).
type CalibrationPoint struct {
	QueueDepth    int
	MeanLatencyUS float64
	P99LatencyUS  float64
	BandwidthGBs  float64
}

// PerformanceModel converts device load into latency and bandwidth numbers.
// It is calibrated with a small set of measured points and interpolates
// between them; beyond the last point the device is saturated.
type PerformanceModel struct {
	points []CalibrationPoint
	// maxBandwidthGBs is the saturated read bandwidth.
	maxBandwidthGBs float64
	// minLatencyUS is the unloaded service latency.
	minLatencyUS float64
	p99Ratio     float64 // typical p99/mean ratio at low load
}

// DefaultCalibration mirrors the shape of the paper's Figure 2: latency
// grows from ~10 us to ~33 us mean (16 us to ~75 us P99) while bandwidth
// grows from ~0.6 GB/s to 2.3 GB/s as the queue depth goes 1 -> 8.
func DefaultCalibration() []CalibrationPoint {
	return []CalibrationPoint{
		{QueueDepth: 1, MeanLatencyUS: 10, P99LatencyUS: 16, BandwidthGBs: 0.60},
		{QueueDepth: 2, MeanLatencyUS: 12, P99LatencyUS: 24, BandwidthGBs: 1.15},
		{QueueDepth: 4, MeanLatencyUS: 18, P99LatencyUS: 42, BandwidthGBs: 1.80},
		{QueueDepth: 8, MeanLatencyUS: 33, P99LatencyUS: 75, BandwidthGBs: 2.30},
	}
}

// NewPerformanceModel builds a model from calibration points (sorted copies
// are kept). Passing nil uses DefaultCalibration.
func NewPerformanceModel(points []CalibrationPoint) *PerformanceModel {
	if len(points) == 0 {
		points = DefaultCalibration()
	}
	cp := append([]CalibrationPoint(nil), points...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].QueueDepth < cp[j].QueueDepth })
	m := &PerformanceModel{
		points:          cp,
		maxBandwidthGBs: cp[len(cp)-1].BandwidthGBs,
		minLatencyUS:    cp[0].MeanLatencyUS,
		p99Ratio:        cp[0].P99LatencyUS / cp[0].MeanLatencyUS,
	}
	return m
}

// MaxBandwidthGBs returns the saturated device read bandwidth in GB/s.
func (m *PerformanceModel) MaxBandwidthGBs() float64 { return m.maxBandwidthGBs }

// MinLatencyUS returns the unloaded mean read latency in microseconds.
func (m *PerformanceModel) MinLatencyUS() float64 { return m.minLatencyUS }

// interp interpolates a field across queue depth (log-linear in qd).
func (m *PerformanceModel) interp(qd float64, field func(CalibrationPoint) float64) float64 {
	pts := m.points
	if qd <= float64(pts[0].QueueDepth) {
		return field(pts[0])
	}
	last := pts[len(pts)-1]
	if qd >= float64(last.QueueDepth) {
		return field(last)
	}
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		if qd <= float64(hi.QueueDepth) {
			// Interpolate linearly in log2(queue depth), which matches the
			// doubling structure of the calibration points.
			t := (math.Log2(qd) - math.Log2(float64(lo.QueueDepth))) /
				(math.Log2(float64(hi.QueueDepth)) - math.Log2(float64(lo.QueueDepth)))
			return field(lo) + t*(field(hi)-field(lo))
		}
	}
	return field(last)
}

// MeanLatencyUS returns the mean 4 KB read latency at the given queue depth.
func (m *PerformanceModel) MeanLatencyUS(queueDepth float64) float64 {
	if queueDepth < 1 {
		queueDepth = 1
	}
	return m.interp(queueDepth, func(p CalibrationPoint) float64 { return p.MeanLatencyUS })
}

// P99LatencyUS returns the P99 4 KB read latency at the given queue depth.
func (m *PerformanceModel) P99LatencyUS(queueDepth float64) float64 {
	if queueDepth < 1 {
		queueDepth = 1
	}
	return m.interp(queueDepth, func(p CalibrationPoint) float64 { return p.P99LatencyUS })
}

// BandwidthGBs returns the sustained read bandwidth at the given queue
// depth.
func (m *PerformanceModel) BandwidthGBs(queueDepth float64) float64 {
	if queueDepth < 1 {
		queueDepth = 1
	}
	return m.interp(queueDepth, func(p CalibrationPoint) float64 { return p.BandwidthGBs })
}

// LoadLatency models the open-loop latency of the device when the *device*
// is reading deviceGBs gigabytes per second (regardless of how much of that
// the application actually uses). As the load approaches the saturated
// bandwidth, queueing delay dominates and the latency grows without bound —
// the hockey-stick curves of Figure 5.
//
// It returns mean and P99 latencies in microseconds. A load at or above the
// device's maximum returns +Inf for both.
func (m *PerformanceModel) LoadLatency(deviceGBs float64) (meanUS, p99US float64) {
	if deviceGBs <= 0 {
		return m.minLatencyUS, m.minLatencyUS * m.p99Ratio
	}
	rho := deviceGBs / m.maxBandwidthGBs
	if rho >= 1 {
		return math.Inf(1), math.Inf(1)
	}
	// M/M/1-style scaling anchored at the unloaded latency; the P99 grows
	// faster than the mean, mirroring the measured curves.
	meanUS = m.minLatencyUS * (1 + rho/(1-rho))
	p99US = m.minLatencyUS * m.p99Ratio * (1 + 1.6*rho/(1-rho))
	return meanUS, p99US
}

// SampleLatencyUS draws one latency sample (in microseconds) for a read
// issued while `inflight` requests are outstanding. The sample follows a
// lognormal distribution whose mean and P99 match the calibrated model, so
// that latency histograms recorded by the Device have realistic tails.
func (m *PerformanceModel) SampleLatencyUS(rng *rand.Rand, inflight int) float64 {
	if inflight < 1 {
		inflight = 1
	}
	mean := m.MeanLatencyUS(float64(inflight))
	p99 := m.P99LatencyUS(float64(inflight))
	if p99 <= mean {
		p99 = mean * 1.2
	}
	// Lognormal with E[X]=mean and P99[X]=p99:
	//   E[X] = exp(mu + sigma^2/2), P99 = exp(mu + 2.326*sigma)
	// Solve for sigma from the ratio.
	ratio := math.Log(p99 / mean)
	// sigma^2/2 - 2.326 sigma + ratio = 0  =>  sigma = 2.326 - sqrt(2.326^2 - 2*ratio)
	disc := 2.326*2.326 - 2*ratio
	var sigma float64
	if disc <= 0 {
		sigma = 2.326
	} else {
		sigma = 2.326 - math.Sqrt(disc)
	}
	if sigma < 0.01 {
		sigma = 0.01
	}
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// String summarises the model.
func (m *PerformanceModel) String() string {
	return fmt.Sprintf("nvm model: %.2f GB/s max read bandwidth, %.0f us unloaded latency, %d calibration points",
		m.maxBandwidthGBs, m.minLatencyUS, len(m.points))
}
