package nvm

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"bandana/internal/metrics"
)

// DeviceConfig configures a simulated NVM device.
type DeviceConfig struct {
	// NumBlocks is the device capacity in 4 KB blocks.
	NumBlocks int
	// Store optionally supplies the backing storage; a MemStore of NumBlocks
	// is created when nil.
	Store BlockStore
	// Model optionally supplies the performance model; the default
	// calibration is used when nil.
	Model *PerformanceModel
	// Seed seeds the latency sampler.
	Seed int64
	// EnduranceDWPD is the number of full drive writes per day the device
	// tolerates (the paper quotes ~30). Used only for reporting.
	EnduranceDWPD float64
}

// Device is a simulated block NVM device: a block store plus a performance
// model plus accounting. All methods are safe for concurrent use.
type Device struct {
	store BlockStore
	model *PerformanceModel

	mu  sync.Mutex
	rng *rand.Rand

	inflight    atomic.Int64
	maxInflight atomic.Int64

	blocksRead     metrics.Counter
	blocksWritten  metrics.Counter
	patchWrites    metrics.Counter
	patchBytes     metrics.Counter
	readBatches    metrics.Counter
	coalescedReads metrics.Counter
	readLatency    *metrics.Histogram

	enduranceDWPD float64
}

// NewDevice creates a simulated device.
func NewDevice(cfg DeviceConfig) *Device {
	store := cfg.Store
	if store == nil {
		store = NewMemStore(cfg.NumBlocks)
	}
	model := cfg.Model
	if model == nil {
		model = NewPerformanceModel(nil)
	}
	dwpd := cfg.EnduranceDWPD
	if dwpd <= 0 {
		dwpd = 30
	}
	return &Device{
		store:         store,
		model:         model,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		readLatency:   metrics.NewLatencyHistogram(),
		enduranceDWPD: dwpd,
	}
}

// NumBlocks returns the device capacity in blocks.
func (d *Device) NumBlocks() int { return d.store.NumBlocks() }

// CapacityBytes returns the device capacity in bytes.
func (d *Device) CapacityBytes() int64 { return int64(d.store.NumBlocks()) * BlockSize }

// Model returns the device's performance model.
func (d *Device) Model() *PerformanceModel { return d.model }

// ReadBlock reads block idx into dst (>= BlockSize bytes) and returns the
// simulated latency in microseconds. The latency depends on how many reads
// are concurrently outstanding, mirroring the queue-depth behaviour of the
// real device.
func (d *Device) ReadBlock(idx int, dst []byte) (latencyUS float64, err error) {
	return d.ReadBlockQD(idx, dst, 1)
}

// ReadBlockQD is like ReadBlock but lets the caller declare the queue depth
// it is driving the device at (e.g. a Fio-style benchmark with a configured
// iodepth). The effective queue depth used for latency sampling is the
// larger of the declared depth and the number of reads actually in flight.
func (d *Device) ReadBlockQD(idx int, dst []byte, queueDepth int) (latencyUS float64, err error) {
	inflight := int(d.inflight.Add(1))
	defer d.inflight.Add(-1)
	if queueDepth > inflight {
		inflight = queueDepth
	}
	d.noteQueueDepth(int64(inflight))

	if err := d.store.ReadBlock(idx, dst); err != nil {
		return 0, err
	}
	d.mu.Lock()
	latencyUS = d.model.SampleLatencyUS(d.rng, inflight)
	d.mu.Unlock()

	d.blocksRead.Inc()
	d.readBatches.Inc()
	d.readLatency.Observe(latencyUS)
	return latencyUS, nil
}

// noteQueueDepth tracks the high-water read queue depth for Stats.
func (d *Device) noteQueueDepth(depth int64) {
	for {
		cur := d.maxInflight.Load()
		if depth <= cur || d.maxInflight.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// NoteCoalescedRead records a read that was served from another read's
// device I/O without reaching the device (reported by the I/O scheduler, so
// the device stats section shows coalescing next to the batch counters).
func (d *Device) NoteCoalescedRead() { d.coalescedReads.Inc() }

// ReadBlocks reads len(idxs) blocks into dst (>= len(idxs)*BlockSize bytes)
// as one batch dispatched at queue depth len(idxs): the blocks overlap at the
// device, so the returned latency is the completion time of the slowest read
// in the batch rather than the sum.
func (d *Device) ReadBlocks(idxs []int, dst []byte) (latencyUS float64, err error) {
	if len(idxs) == 0 {
		return 0, nil
	}
	inflight := int(d.inflight.Add(int64(len(idxs))))
	defer d.inflight.Add(int64(-len(idxs)))
	d.noteQueueDepth(int64(inflight))

	if err := d.store.ReadBlocks(idxs, dst); err != nil {
		return 0, err
	}
	d.mu.Lock()
	for range idxs {
		if l := d.model.SampleLatencyUS(d.rng, inflight); l > latencyUS {
			latencyUS = l
		}
	}
	d.mu.Unlock()

	d.blocksRead.Add(int64(len(idxs)))
	d.readBatches.Inc()
	d.readLatency.Observe(latencyUS)
	return latencyUS, nil
}

// BatchResult carries the completion of an asynchronously submitted batch
// read.
type BatchResult struct {
	// LatencyUS is the simulated completion time of the batch's slowest
	// read.
	LatencyUS float64
	Err       error
}

// ReadBlocksAsync is the device's asynchronous submission API: it starts a
// batched read of idxs into dst and returns immediately; the completion
// arrives on the returned channel (buffered, so the device never blocks on
// a slow receiver). dst must stay untouched until the result is received.
// It exists for callers that overlap a batch read with other work —
// notably a future multi-batch-in-flight I/O scheduler dispatcher; the
// current single-batch dispatcher (internal/iosched) uses the synchronous
// ReadBlocks, which is equivalent and cheaper when the completion is
// awaited immediately.
func (d *Device) ReadBlocksAsync(idxs []int, dst []byte) <-chan BatchResult {
	ch := make(chan BatchResult, 1)
	go func() {
		lat, err := d.ReadBlocks(idxs, dst)
		ch <- BatchResult{LatencyUS: lat, Err: err}
	}()
	return ch
}

// WriteBlock writes src as block idx.
func (d *Device) WriteBlock(idx int, src []byte) error {
	if err := d.store.WriteBlock(idx, src); err != nil {
		return err
	}
	d.blocksWritten.Inc()
	return nil
}

// WriteBlockPatch updates len(p) bytes of block idx at byte offset off
// through the store's journaled sub-block path when it has one (PatchWriter),
// falling back to a read-modify-write of the whole block. This is the
// single-vector update path: callers must serialize concurrent patches of the
// same bytes (core's per-table update mutex does), but patches of disjoint
// byte ranges are safe to issue concurrently on PatchWriter stores.
func (d *Device) WriteBlockPatch(idx, off int, p []byte) error {
	if pw, ok := d.store.(PatchWriter); ok {
		if err := pw.WriteBlockPatch(idx, off, p); err != nil {
			return err
		}
		d.patchWrites.Inc()
		d.patchBytes.Add(int64(len(p)))
		return nil
	}
	bufp := GetBlockBuf()
	defer PutBlockBuf(bufp)
	buf := *bufp
	if err := d.store.ReadBlock(idx, buf); err != nil {
		return err
	}
	copy(buf[off:], p)
	return d.WriteBlock(idx, buf)
}

// WriteBlockBulk writes src as block idx through the backing store's
// bulk-load path, skipping any write-ahead journal it keeps (stores without
// one behave exactly like WriteBlock). Use it for multi-block loads whose
// crash-atomicity is handled by a higher-level commit point; single-block
// updates should use WriteBlock.
func (d *Device) WriteBlockBulk(idx int, src []byte) error {
	bw, ok := d.store.(BulkWriter)
	if !ok {
		return d.WriteBlock(idx, src)
	}
	if err := bw.WriteBlockUnjournaled(idx, src); err != nil {
		return err
	}
	d.blocksWritten.Inc()
	return nil
}

// WriteBlocksBulk installs len(src)/BlockSize consecutive blocks starting
// at base through the store's contiguous bulk path when it has one
// (RangeBulkWriter: a single pwrite on the file backend), falling back to
// per-block bulk writes otherwise. This is the migration copy-in path; the
// caller owns the crash-atomicity commit point.
func (d *Device) WriteBlocksBulk(base int, src []byte) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("nvm: bulk write of %d bytes is not block-aligned", len(src))
	}
	n := len(src) / BlockSize
	if rw, ok := d.store.(RangeBulkWriter); ok {
		if err := rw.WriteBlocksUnjournaled(base, src); err != nil {
			return err
		}
		d.blocksWritten.Add(int64(n))
		return nil
	}
	for i := 0; i < n; i++ {
		if err := d.WriteBlockBulk(base+i, src[i*BlockSize:(i+1)*BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// Flush forces buffered writes of the backing store to stable storage; it is
// a no-op for stores (like MemStore) that do not buffer.
func (d *Device) Flush() error {
	if fl, ok := d.store.(Flusher); ok {
		return fl.Flush()
	}
	return nil
}

// Close releases the backing store.
func (d *Device) Close() error { return d.store.Close() }

// Stats is a snapshot of device counters.
type Stats struct {
	BlocksRead    int64
	BlocksWritten int64
	// PatchWrites counts journaled sub-block patch writes (single-vector
	// updates); their bytes land in BytesWritten at patch size, not block
	// size — the device-level write volume stays honest.
	PatchWrites  int64
	BytesRead    int64
	BytesWritten int64
	ReadLatency  metrics.Snapshot
	// ReadsSubmitted is the total read intents served: blocks actually
	// read from the device plus reads coalesced onto another read's I/O.
	ReadsSubmitted int64
	// ReadBatches counts read dispatches (a single ReadBlock is a batch of
	// one); AvgReadBatch = BlocksRead / ReadBatches — the realized device
	// queue depth of the read path.
	ReadBatches  int64
	AvgReadBatch float64
	// MaxQueueDepth is the high-water number of concurrently outstanding
	// reads (including declared benchmark depths) since the last reset.
	MaxQueueDepth int64
	// CoalescedReads counts reads served without device I/O by the I/O
	// scheduler's same-block coalescing (see NoteCoalescedRead).
	CoalescedReads int64
	// DriveWrites is the number of full-device overwrites performed so far.
	DriveWrites float64
	// EnduranceDWPD is the configured endurance budget (writes/day).
	EnduranceDWPD float64
	// Store describes the backing block store (backend name, journal and
	// flush counters for the file backend).
	Store BackendStats
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	br := d.blocksRead.Value()
	bw := d.blocksWritten.Value()
	coalesced := d.coalescedReads.Value()
	s := Stats{
		BlocksRead:     br,
		BlocksWritten:  bw,
		PatchWrites:    d.patchWrites.Value(),
		BytesRead:      br * BlockSize,
		BytesWritten:   bw*BlockSize + d.patchBytes.Value(),
		ReadLatency:    d.readLatency.Snapshot(),
		ReadsSubmitted: br + coalesced,
		ReadBatches:    d.readBatches.Value(),
		MaxQueueDepth:  d.maxInflight.Load(),
		CoalescedReads: coalesced,
		EnduranceDWPD:  d.enduranceDWPD,
	}
	if s.ReadBatches > 0 {
		s.AvgReadBatch = float64(s.BlocksRead) / float64(s.ReadBatches)
	}
	if bs, ok := d.store.(BackendStatser); ok {
		s.Store = bs.BackendStats()
	}
	if cap := d.CapacityBytes(); cap > 0 {
		s.DriveWrites = float64(s.BytesWritten) / float64(cap)
	}
	return s
}

// ResetStats clears the device counters (capacity and contents are kept).
func (d *Device) ResetStats() {
	d.blocksRead.Reset()
	d.blocksWritten.Reset()
	d.patchWrites.Reset()
	d.patchBytes.Reset()
	d.readBatches.Reset()
	d.coalescedReads.Reset()
	d.maxInflight.Store(0)
	d.readLatency.Reset()
}

// String describes the device.
func (d *Device) String() string {
	return fmt.Sprintf("nvm device: %d blocks (%.1f GB), %s",
		d.NumBlocks(), float64(d.CapacityBytes())/1e9, d.model)
}
