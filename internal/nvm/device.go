package nvm

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"bandana/internal/metrics"
)

// DeviceConfig configures a simulated NVM device.
type DeviceConfig struct {
	// NumBlocks is the device capacity in 4 KB blocks.
	NumBlocks int
	// Store optionally supplies the backing storage; a MemStore of NumBlocks
	// is created when nil.
	Store BlockStore
	// Model optionally supplies the performance model; the default
	// calibration is used when nil.
	Model *PerformanceModel
	// Seed seeds the latency sampler.
	Seed int64
	// EnduranceDWPD is the number of full drive writes per day the device
	// tolerates (the paper quotes ~30). Used only for reporting.
	EnduranceDWPD float64
}

// Device is a simulated block NVM device: a block store plus a performance
// model plus accounting. All methods are safe for concurrent use.
type Device struct {
	store BlockStore
	model *PerformanceModel

	mu  sync.Mutex
	rng *rand.Rand

	inflight atomic.Int64

	blocksRead    metrics.Counter
	blocksWritten metrics.Counter
	readLatency   *metrics.Histogram

	enduranceDWPD float64
}

// NewDevice creates a simulated device.
func NewDevice(cfg DeviceConfig) *Device {
	store := cfg.Store
	if store == nil {
		store = NewMemStore(cfg.NumBlocks)
	}
	model := cfg.Model
	if model == nil {
		model = NewPerformanceModel(nil)
	}
	dwpd := cfg.EnduranceDWPD
	if dwpd <= 0 {
		dwpd = 30
	}
	return &Device{
		store:         store,
		model:         model,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		readLatency:   metrics.NewLatencyHistogram(),
		enduranceDWPD: dwpd,
	}
}

// NumBlocks returns the device capacity in blocks.
func (d *Device) NumBlocks() int { return d.store.NumBlocks() }

// CapacityBytes returns the device capacity in bytes.
func (d *Device) CapacityBytes() int64 { return int64(d.store.NumBlocks()) * BlockSize }

// Model returns the device's performance model.
func (d *Device) Model() *PerformanceModel { return d.model }

// ReadBlock reads block idx into dst (>= BlockSize bytes) and returns the
// simulated latency in microseconds. The latency depends on how many reads
// are concurrently outstanding, mirroring the queue-depth behaviour of the
// real device.
func (d *Device) ReadBlock(idx int, dst []byte) (latencyUS float64, err error) {
	return d.ReadBlockQD(idx, dst, 1)
}

// ReadBlockQD is like ReadBlock but lets the caller declare the queue depth
// it is driving the device at (e.g. a Fio-style benchmark with a configured
// iodepth). The effective queue depth used for latency sampling is the
// larger of the declared depth and the number of reads actually in flight.
func (d *Device) ReadBlockQD(idx int, dst []byte, queueDepth int) (latencyUS float64, err error) {
	inflight := int(d.inflight.Add(1))
	defer d.inflight.Add(-1)
	if queueDepth > inflight {
		inflight = queueDepth
	}

	if err := d.store.ReadBlock(idx, dst); err != nil {
		return 0, err
	}
	d.mu.Lock()
	latencyUS = d.model.SampleLatencyUS(d.rng, inflight)
	d.mu.Unlock()

	d.blocksRead.Inc()
	d.readLatency.Observe(latencyUS)
	return latencyUS, nil
}

// ReadBlocks reads len(idxs) blocks into dst (>= len(idxs)*BlockSize bytes)
// as one batch dispatched at queue depth len(idxs): the blocks overlap at the
// device, so the returned latency is the completion time of the slowest read
// in the batch rather than the sum.
func (d *Device) ReadBlocks(idxs []int, dst []byte) (latencyUS float64, err error) {
	if len(idxs) == 0 {
		return 0, nil
	}
	inflight := int(d.inflight.Add(int64(len(idxs))))
	defer d.inflight.Add(int64(-len(idxs)))

	if err := d.store.ReadBlocks(idxs, dst); err != nil {
		return 0, err
	}
	d.mu.Lock()
	for range idxs {
		if l := d.model.SampleLatencyUS(d.rng, inflight); l > latencyUS {
			latencyUS = l
		}
	}
	d.mu.Unlock()

	d.blocksRead.Add(int64(len(idxs)))
	d.readLatency.Observe(latencyUS)
	return latencyUS, nil
}

// WriteBlock writes src as block idx.
func (d *Device) WriteBlock(idx int, src []byte) error {
	if err := d.store.WriteBlock(idx, src); err != nil {
		return err
	}
	d.blocksWritten.Inc()
	return nil
}

// WriteBlockBulk writes src as block idx through the backing store's
// bulk-load path, skipping any write-ahead journal it keeps (stores without
// one behave exactly like WriteBlock). Use it for multi-block loads whose
// crash-atomicity is handled by a higher-level commit point; single-block
// updates should use WriteBlock.
func (d *Device) WriteBlockBulk(idx int, src []byte) error {
	bw, ok := d.store.(BulkWriter)
	if !ok {
		return d.WriteBlock(idx, src)
	}
	if err := bw.WriteBlockUnjournaled(idx, src); err != nil {
		return err
	}
	d.blocksWritten.Inc()
	return nil
}

// WriteBlocksBulk installs len(src)/BlockSize consecutive blocks starting
// at base through the store's contiguous bulk path when it has one
// (RangeBulkWriter: a single pwrite on the file backend), falling back to
// per-block bulk writes otherwise. This is the migration copy-in path; the
// caller owns the crash-atomicity commit point.
func (d *Device) WriteBlocksBulk(base int, src []byte) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("nvm: bulk write of %d bytes is not block-aligned", len(src))
	}
	n := len(src) / BlockSize
	if rw, ok := d.store.(RangeBulkWriter); ok {
		if err := rw.WriteBlocksUnjournaled(base, src); err != nil {
			return err
		}
		d.blocksWritten.Add(int64(n))
		return nil
	}
	for i := 0; i < n; i++ {
		if err := d.WriteBlockBulk(base+i, src[i*BlockSize:(i+1)*BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// Flush forces buffered writes of the backing store to stable storage; it is
// a no-op for stores (like MemStore) that do not buffer.
func (d *Device) Flush() error {
	if fl, ok := d.store.(Flusher); ok {
		return fl.Flush()
	}
	return nil
}

// Close releases the backing store.
func (d *Device) Close() error { return d.store.Close() }

// Stats is a snapshot of device counters.
type Stats struct {
	BlocksRead    int64
	BlocksWritten int64
	BytesRead     int64
	BytesWritten  int64
	ReadLatency   metrics.Snapshot
	// DriveWrites is the number of full-device overwrites performed so far.
	DriveWrites float64
	// EnduranceDWPD is the configured endurance budget (writes/day).
	EnduranceDWPD float64
	// Store describes the backing block store (backend name, journal and
	// flush counters for the file backend).
	Store BackendStats
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	br := d.blocksRead.Value()
	bw := d.blocksWritten.Value()
	s := Stats{
		BlocksRead:    br,
		BlocksWritten: bw,
		BytesRead:     br * BlockSize,
		BytesWritten:  bw * BlockSize,
		ReadLatency:   d.readLatency.Snapshot(),
		EnduranceDWPD: d.enduranceDWPD,
	}
	if bs, ok := d.store.(BackendStatser); ok {
		s.Store = bs.BackendStats()
	}
	if cap := d.CapacityBytes(); cap > 0 {
		s.DriveWrites = float64(s.BytesWritten) / float64(cap)
	}
	return s
}

// ResetStats clears the device counters (capacity and contents are kept).
func (d *Device) ResetStats() {
	d.blocksRead.Reset()
	d.blocksWritten.Reset()
	d.readLatency.Reset()
}

// String describes the device.
func (d *Device) String() string {
	return fmt.Sprintf("nvm device: %d blocks (%.1f GB), %s",
		d.NumBlocks(), float64(d.CapacityBytes())/1e9, d.model)
}
