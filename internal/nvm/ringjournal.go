package nvm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
)

// ringJournal is the appending write-ahead journal of a FileStore (format
// v2). Records are appended sequentially into a dedicated ring region — one
// pwrite per record — and retired in bulk by advancing a persisted head
// watermark once their in-place writes are durable. Compared to the fixed
// J-slot journal it replaces (journal data + journal header + retire = 3
// extra pwrites per block write), the steady-state cost is a single
// sequential append.
//
// Record framing (every record starts on a BlockSize boundary, so an append
// never rewrites bytes of a previously synced record):
//
//	magic   [8]  "BNDJRNL2"
//	seq     [8]  strictly increasing, every record (including pads) takes one
//	target  [8]  data block index, a patchFlag-encoded (block, offset) pair,
//	             or padTarget / skipTarget
//	dataLen [4]
//	dataCRC [4]  CRC-32C of the payload (block records only)
//	hdrCRC  [4]  CRC-32C of the 32 bytes above
//	payload [dataLen], then padding up to the next BlockSize boundary
//
// The scan at open starts from the persisted head watermark and accepts
// records only while magic, header CRC and the exact next sequence number
// all match; the first mismatch is the tail (a torn append rolls back, a
// stale old-lap record terminates the scan). Valid block records REDO in
// sequence order, which also repairs any torn in-place write.
//
// The watermark (head offset + head seq + generation) is persisted in two
// alternating BlockSize slots: a torn watermark write falls back to the
// previous generation, whose scan is still valid because ring space freed by
// a watermark is only reused after that watermark's pwrite returned.
type ringJournal struct {
	s    *FileStore
	off  int64 // file offset of the ring region
	size int64 // ring region bytes (multiple of BlockSize)

	mu       sync.Mutex
	spaceCnd *sync.Cond
	img      []byte // aligned in-memory copy of the ring region
	head     int64  // offset of the oldest un-retired record
	tail     int64  // next append offset
	live     int64  // bytes between head and tail
	nextSeq  uint64
	gen      uint64     // watermark generation (slot = gen & 1)
	pending  []*ringRec // FIFO of un-retired records
	nFailed  int

	appends       atomic.Int64 // block-record appends
	bytesAppended atomic.Int64
	gcRuns        atomic.Int64
	failedRecs    atomic.Int64

	gcKick chan struct{}
	stopGC chan struct{}
	gcDone chan struct{}
}

type ringRec struct {
	seq    uint64
	target uint64
	off    int64 // start offset within the ring
	size   int64 // span in bytes (BlockSize multiple)
	done   bool  // in-place write durable (or record tombstoned)
	failed bool  // in-place write failed: record is the only good copy
}

const (
	ringMagic      = "BNDJRNL2"
	ringHdrBytes   = 36
	watermarkMagic = "BNDWMRK1"
	watermarkBytes = 36 // magic(8) gen(8) headOff(8) headSeq(8) crc(4)

	// padTarget marks a filler record that carries the sequence across the
	// ring-end wrap; skipTarget marks a tombstoned (superseded) record.
	// Neither is replayed.
	padTarget  = ^uint64(0)
	skipTarget = ^uint64(0) - 1

	// patchFlag marks a sub-block patch record: target = patchFlag |
	// block<<12 | byte offset within the block, and the payload is the
	// dataLen patched bytes rather than a whole block image. Patch records
	// REDO by read-modify-writing the target block in sequence order — the
	// journaled single-vector update path costs a one-page append plus a
	// sub-block in-place write instead of two full pages plus one.
	patchFlag = uint64(1) << 62
)

// patchTargetOf encodes a (block, byte offset) pair as a patch-record target.
func patchTargetOf(idx, off int) uint64 {
	return patchFlag | uint64(idx)<<12 | uint64(off)
}

// isPatchTarget reports whether t addresses a sub-block patch (pad and skip
// markers carry the flag bit but are their own record kinds).
func isPatchTarget(t uint64) bool {
	return t&patchFlag != 0 && t != padTarget && t != skipTarget
}

// patchTargetBlockOff decodes a patch-record target.
func patchTargetBlockOff(t uint64) (idx, off int) {
	return int((t &^ patchFlag) >> 12), int(t & (BlockSize - 1))
}

// targetBlock maps any replayable record target to its data block index.
func targetBlock(t uint64) uint64 {
	if isPatchTarget(t) {
		b, _ := patchTargetBlockOff(t)
		return uint64(b)
	}
	return t
}

// recSpan is the ring footprint of a record with a dataLen-byte payload.
func recSpan(dataLen int) int64 {
	return (int64(ringHdrBytes+dataLen) + BlockSize - 1) &^ (BlockSize - 1)
}

func newRingJournal(s *FileStore, ringBlocks int, ringOff int64) *ringJournal {
	r := &ringJournal{
		s:      s,
		off:    ringOff,
		size:   int64(ringBlocks) * BlockSize,
		img:    alignedBytes(ringBlocks * BlockSize),
		gcKick: make(chan struct{}, 1),
		stopGC: make(chan struct{}),
		gcDone: make(chan struct{}),
	}
	r.spaceCnd = sync.NewCond(&r.mu)
	return r
}

func (r *ringJournal) start() { go r.gcLoop() }

func (r *ringJournal) stop() {
	close(r.stopGC)
	<-r.gcDone
}

func (r *ringJournal) encodeHdr(dst []byte, seq, target uint64, dataLen int, dataCRC uint32) {
	copy(dst[:8], ringMagic)
	binary.LittleEndian.PutUint64(dst[8:], seq)
	binary.LittleEndian.PutUint64(dst[16:], target)
	binary.LittleEndian.PutUint32(dst[24:], uint32(dataLen))
	binary.LittleEndian.PutUint32(dst[28:], dataCRC)
	binary.LittleEndian.PutUint32(dst[32:], crc32.Checksum(dst[:32], castagnoli))
}

// append journals one block write: it claims ring space (retiring completed
// records or waiting for in-flight ones if the ring is full), stamps the
// next sequence number, and lands the record in a single pwrite. It returns
// the record's seq for the later complete/fail call.
func (r *ringJournal) append(target uint64, data []byte) (uint64, error) {
	need := recSpan(len(data))
	r.mu.Lock()
	defer r.mu.Unlock()

	// A record never crosses the ring end; wrapping costs a one-page pad
	// record that keeps the scan's sequence chain intact.
	pad := int64(0)
	if rem := r.size - r.tail; rem < need {
		pad = rem
	}
	if pad+need > r.size {
		return 0, fmt.Errorf("nvm: %d-byte journal record exceeds ring size %d", need, r.size)
	}
	for r.live+pad+need > r.size {
		// Retire whatever is already durable, then wait for in-flight
		// writes if that was not enough. A failed write pins its record
		// (it is the only good copy of its block) and therefore the head:
		// fail fast instead of parking forever on a wedged ring.
		if err := r.gcLocked(); err != nil {
			return 0, fmt.Errorf("nvm: journal gc: %w", err)
		}
		if r.live+pad+need <= r.size {
			break
		}
		if len(r.pending) > 0 && r.pending[0].failed {
			return 0, fmt.Errorf("nvm: ring journal full and pinned by a failed block write; reopen the store to repair")
		}
		if len(r.pending) == 0 {
			return 0, fmt.Errorf("nvm: ring journal too small for a %d-byte record", need)
		}
		r.spaceCnd.Wait()
	}

	if pad > 0 {
		seq := r.nextSeq
		r.nextSeq++
		off := r.tail
		r.encodeHdr(r.img[off:], seq, padTarget, int(pad)-ringHdrBytes, 0)
		// Only the header needs to reach disk; the rest of the pad span is
		// never read back (a whole aligned page under O_DIRECT).
		wlen := int64(ringHdrBytes)
		if r.s.direct {
			wlen = BlockSize
		}
		if err := r.s.writeAt(r.img[off:off+wlen], r.off+off); err != nil {
			r.nextSeq--
			return 0, fmt.Errorf("nvm: journal pad: %w", err)
		}
		r.bytesAppended.Add(BlockSize)
		r.pending = append(r.pending, &ringRec{seq: seq, target: padTarget, off: off, size: pad, done: true})
		r.live += pad
		r.tail = 0
	}

	seq := r.nextSeq
	r.nextSeq++
	off := r.tail
	r.encodeHdr(r.img[off:], seq, target, len(data), crc32.Checksum(data, castagnoli))
	copy(r.img[off+ringHdrBytes:], data)
	// Persist only header+payload: the span's tail padding is never read by
	// the scan (its content is don't-care), so a sub-block patch record
	// costs a ~200-byte pwrite instead of a full page. O_DIRECT cannot
	// issue sub-page writes, so direct mode lands the whole aligned span.
	wlen := int64(ringHdrBytes + len(data))
	if r.s.direct {
		wlen = need
	}
	if err := r.s.writeAt(r.img[off:off+wlen], r.off+off); err != nil {
		// The span may be torn on disk; the scan's CRC/seq checks roll it
		// back, and the next append rewrites the same span in full.
		r.nextSeq--
		return 0, fmt.Errorf("nvm: journal append: %w", err)
	}
	r.appends.Add(1)
	r.bytesAppended.Add(need)
	r.pending = append(r.pending, &ringRec{seq: seq, target: target, off: off, size: need})
	r.live += need
	r.tail += need
	if r.tail == r.size {
		r.tail = 0
	}
	return seq, nil
}

// complete marks seq's in-place write durable, making the record eligible
// for retirement. GC runs in the background once a quarter of the ring is
// retirable (and inline when an append needs the space).
func (r *ringJournal) complete(seq uint64) {
	r.mu.Lock()
	// pending is seq-sorted (appends stamp increasing seqs), so the record
	// is found by binary search — completes are on the per-write hot path.
	if i := sort.Search(len(r.pending), func(i int) bool { return r.pending[i].seq >= seq }); i < len(r.pending) && r.pending[i].seq == seq {
		r.pending[i].done = true
	}
	retirable := int64(0)
	for _, rec := range r.pending {
		if !rec.done {
			break
		}
		retirable += rec.size
	}
	r.mu.Unlock()
	r.spaceCnd.Broadcast()
	if retirable >= r.size/4 {
		select {
		case r.gcKick <- struct{}{}:
		default:
		}
	}
}

// fail marks seq's in-place write failed. The record is now the only good
// copy of its block: it pins the head (GC cannot pass it) so the next open
// replays it — the successor of the J-slot quarantine. A later successful
// write of the same block tombstones it (supersedeFailed) and unpins GC.
func (r *ringJournal) fail(seq uint64) {
	r.mu.Lock()
	for _, rec := range r.pending {
		if rec.seq == seq {
			if !rec.failed && !rec.done {
				rec.failed = true
				r.nFailed++
				r.failedRecs.Add(1)
			}
			break
		}
	}
	r.mu.Unlock()
}

// tombstoneLocked rewrites rec's header as skipTarget in the image and on
// disk (its header page only) and marks it retirable.
func (r *ringJournal) tombstoneLocked(rec *ringRec) error {
	r.encodeHdr(r.img[rec.off:], rec.seq, skipTarget, int(rec.size)-ringHdrBytes, 0)
	wlen := int64(ringHdrBytes)
	if r.s.direct {
		wlen = BlockSize
	}
	if err := r.s.writeAt(r.img[rec.off:rec.off+wlen], r.off+rec.off); err != nil {
		return err
	}
	if rec.failed {
		rec.failed = false
		r.nFailed--
	}
	rec.done = true
	return nil
}

// supersedeFailed tombstones failed records for block older than afterSeq:
// a newer successful write of the block makes them stale, and they must not
// keep GC pinned. (Replay order alone already keeps crash recovery correct —
// the newer record replays after the stale one — so this is about unwedging
// the ring, not correctness.)
func (r *ringJournal) supersedeFailed(block uint64, afterSeq uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nFailed == 0 {
		return nil
	}
	for _, rec := range r.pending {
		if rec.failed && rec.target != skipTarget && targetBlock(rec.target) == block && rec.seq < afterSeq {
			if err := r.tombstoneLocked(rec); err != nil {
				return fmt.Errorf("nvm: retire superseded record: %w", err)
			}
		}
	}
	r.spaceCnd.Broadcast()
	return nil
}

// supersedeRange tombstones every live record targeting [base, base+n).
// Bulk unjournaled writes call it BEFORE their data pwrite: once the bulk
// bytes land, a crash must not replay a stale journaled image over them.
// The window where the old record is dead but the bulk write has not landed
// is covered by the bulk caller's own commit point (it redoes the whole
// load if interrupted). When no live record targets the range — the common
// bulk-load case — this issues no I/O, keeping bulk loads at 1 pwrite.
func (r *ringJournal) supersedeRange(base, n int) error {
	lo, hi := uint64(base), uint64(base+n)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range r.pending {
		if rec.target == padTarget || rec.target == skipTarget {
			continue
		}
		if b := targetBlock(rec.target); b >= lo && b < hi {
			if err := r.tombstoneLocked(rec); err != nil {
				return fmt.Errorf("nvm: retire superseded record: %w", err)
			}
		}
	}
	r.spaceCnd.Broadcast()
	return nil
}

// gcLocked retires the longest done prefix of the FIFO: it persists the new
// head watermark first and frees the ring space only after that pwrite
// returned, so a torn watermark write can always fall back to the previous
// generation and still find a valid record chain.
func (r *ringJournal) gcLocked() error {
	n := 0
	newHead := r.head
	var lastSeq uint64
	for _, rec := range r.pending {
		if !rec.done {
			break
		}
		n++
		newHead = rec.off + rec.size
		if newHead == r.size {
			newHead = 0
		}
		lastSeq = rec.seq
	}
	if n == 0 {
		return nil
	}
	if err := r.writeWatermark(r.gen+1, newHead, lastSeq+1); err != nil {
		return err
	}
	r.gen++
	for _, rec := range r.pending[:n] {
		r.live -= rec.size
	}
	r.pending = r.pending[:copy(r.pending, r.pending[n:])]
	r.head = newHead
	r.gcRuns.Add(1)
	r.spaceCnd.Broadcast()
	return nil
}

// gc retires completed records (background/shutdown entry point).
func (r *ringJournal) gc() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gcLocked()
}

func (r *ringJournal) gcLoop() {
	defer close(r.gcDone)
	for {
		select {
		case <-r.gcKick:
			_ = r.gc() // an error here only defers retirement; append retries inline
		case <-r.stopGC:
			return
		}
	}
}

func (r *ringJournal) wmOff(gen uint64) int64 { return int64(1+gen&1) * BlockSize }

func (r *ringJournal) writeWatermark(gen uint64, headOff int64, headSeq uint64) error {
	bp := GetBlockBuf()
	defer PutBlockBuf(bp)
	buf := *bp
	for i := range buf {
		buf[i] = 0
	}
	copy(buf[:8], watermarkMagic)
	binary.LittleEndian.PutUint64(buf[8:], gen)
	binary.LittleEndian.PutUint64(buf[16:], uint64(headOff))
	binary.LittleEndian.PutUint64(buf[24:], headSeq)
	binary.LittleEndian.PutUint32(buf[32:], crc32.Checksum(buf[:32], castagnoli))
	if err := r.s.writeAt(buf, r.wmOff(gen)); err != nil {
		return fmt.Errorf("nvm: write journal watermark: %w", err)
	}
	return nil
}

// ringApply is one REDO from recovery: a valid journaled block image (off 0,
// BlockSize bytes) or a sub-block patch (off + data within the block).
type ringApply struct {
	target int
	off    int    // byte offset within the block (0 for full-block records)
	data   []byte // view into the ring image
}

// recover loads the ring image, picks the newest valid watermark, and scans
// the record chain from it. It returns the block records to REDO (in
// sequence order) and leaves the journal positioned at the scan tail; the
// caller applies the records, syncs, and calls retireAll.
func (r *ringJournal) recover(numBlocks int) ([]ringApply, error) {
	type wm struct {
		gen     uint64
		headOff int64
		headSeq uint64
	}
	var best wm
	found := false
	bp := GetBlockBuf()
	defer PutBlockBuf(bp)
	for slot := int64(1); slot <= 2; slot++ {
		buf := *bp
		if err := r.s.readAt(buf, slot*BlockSize); err != nil {
			return nil, fmt.Errorf("nvm: read journal watermark: %w", err)
		}
		if string(buf[:8]) != watermarkMagic {
			continue
		}
		if crc32.Checksum(buf[:32], castagnoli) != binary.LittleEndian.Uint32(buf[32:]) {
			continue
		}
		w := wm{
			gen:     binary.LittleEndian.Uint64(buf[8:]),
			headOff: int64(binary.LittleEndian.Uint64(buf[16:])),
			headSeq: binary.LittleEndian.Uint64(buf[24:]),
		}
		if w.headOff < 0 || w.headOff >= r.size || w.headOff%BlockSize != 0 {
			continue
		}
		if !found || w.gen > best.gen {
			best, found = w, true
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: no valid journal watermark", ErrBadSuperblock)
	}
	if err := r.s.readAt(r.img, r.off); err != nil {
		return nil, fmt.Errorf("nvm: read ring journal: %w", err)
	}

	off, exp := best.headOff, best.headSeq
	scanned := int64(0)
	var applies []ringApply
scan:
	for scanned < r.size {
		hdr := r.img[off : off+ringHdrBytes]
		if string(hdr[:8]) != ringMagic {
			break
		}
		if crc32.Checksum(hdr[:32], castagnoli) != binary.LittleEndian.Uint32(hdr[32:]) {
			break // torn append: roll back
		}
		if binary.LittleEndian.Uint64(hdr[8:]) != exp {
			break // stale record from an earlier lap: end of the chain
		}
		target := binary.LittleEndian.Uint64(hdr[16:])
		dataLen := int(binary.LittleEndian.Uint32(hdr[24:]))
		span := recSpan(dataLen)
		if span > r.size-off {
			break // implausible length: corrupt
		}
		switch {
		case target == padTarget || target == skipTarget:
			// pad: wrap filler; skip: tombstoned by a superseding write
		case isPatchTarget(target):
			blk, poff := patchTargetBlockOff(target)
			if dataLen == 0 || poff+dataLen > BlockSize || blk >= numBlocks {
				return nil, fmt.Errorf("nvm: ring journal seq %d: implausible patch record (block %d, off %d, %d bytes)", exp, blk, poff, dataLen)
			}
			data := r.img[off+ringHdrBytes : off+ringHdrBytes+int64(dataLen)]
			if crc32.Checksum(data, castagnoli) != binary.LittleEndian.Uint32(hdr[28:]) {
				break scan // torn append payload: roll back
			}
			applies = append(applies, ringApply{target: blk, off: poff, data: data})
		default:
			if dataLen != BlockSize || target >= uint64(numBlocks) {
				return nil, fmt.Errorf("nvm: ring journal seq %d: implausible record (target %d, %d bytes)", exp, target, dataLen)
			}
			data := r.img[off+ringHdrBytes : off+ringHdrBytes+int64(dataLen)]
			if crc32.Checksum(data, castagnoli) != binary.LittleEndian.Uint32(hdr[28:]) {
				break scan // torn append payload: roll back
			}
			applies = append(applies, ringApply{target: int(target), data: data})
		}
		exp++
		scanned += span
		off += span
		if off == r.size {
			off = 0
		}
	}

	r.gen = best.gen
	r.head, r.tail = off, off
	r.live = 0
	r.nextSeq = exp
	return applies, nil
}

// retireAll persists a fresh watermark at the scan tail, retiring every
// replayed record. The caller must have made the replayed data durable
// first.
func (r *ringJournal) retireAll() error {
	if err := r.writeWatermark(r.gen+1, r.head, r.nextSeq); err != nil {
		return err
	}
	r.gen++
	return nil
}

// utilization is the live fraction of the ring (journal pressure gauge).
func (r *ringJournal) utilization() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.size == 0 {
		return 0
	}
	return float64(r.live) / float64(r.size)
}
