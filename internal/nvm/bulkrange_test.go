package nvm

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestWriteBlocksBulkRoundTrip installs a contiguous range through the bulk
// path on both backends and verifies the blocks read back identically, that
// single-block writes interleave correctly, and that alignment errors are
// rejected.
func TestWriteBlocksBulkRoundTrip(t *testing.T) {
	const blocks = 16
	img := make([]byte, 10*BlockSize)
	for i := range img {
		img[i] = byte(i * 31)
	}

	newFile := func(t *testing.T) *Device {
		fs, err := CreateFileStore(filepath.Join(t.TempDir(), "blocks.bnd"), blocks, FileStoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return NewDevice(DeviceConfig{Store: fs, Seed: 1})
	}
	backends := map[string]func(t *testing.T) *Device{
		"mem":  func(t *testing.T) *Device { return NewDevice(DeviceConfig{NumBlocks: blocks, Seed: 1}) },
		"file": newFile,
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			d := mk(t)
			defer d.Close()
			if err := d.WriteBlocksBulk(3, img); err != nil {
				t.Fatal(err)
			}
			// A single-block journaled write inside the range supersedes
			// the bulk image for that block only.
			over := make([]byte, BlockSize)
			for i := range over {
				over[i] = 0xAB
			}
			if err := d.WriteBlock(5, over); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, BlockSize)
			for b := 0; b < 10; b++ {
				if _, err := d.ReadBlock(3+b, buf); err != nil {
					t.Fatal(err)
				}
				want := img[b*BlockSize : (b+1)*BlockSize]
				if 3+b == 5 {
					want = over
				}
				if !bytes.Equal(buf, want) {
					t.Fatalf("%s: block %d does not match bulk image", name, 3+b)
				}
			}
			if err := d.WriteBlocksBulk(0, make([]byte, BlockSize/2)); err == nil {
				t.Fatal("unaligned bulk write accepted")
			}
			if err := d.WriteBlocksBulk(blocks-2, make([]byte, 4*BlockSize)); err == nil {
				t.Fatal("out-of-range bulk write accepted")
			}
		})
	}
}
