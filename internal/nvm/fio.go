package nvm

import (
	"math/rand"
	"sync"

	"bandana/internal/metrics"
)

// FioResult is one row of a Fio-style random-read benchmark (the paper's
// Figure 2): the latency and bandwidth observed at a given queue depth.
type FioResult struct {
	QueueDepth    int
	Jobs          int
	Ops           int64
	MeanLatencyUS float64
	P90LatencyUS  float64
	P99LatencyUS  float64
	P999LatencyUS float64
	BandwidthGBs  float64
}

// FioConfig configures RunFio.
type FioConfig struct {
	// Jobs is the number of concurrent workers (the paper uses 4).
	Jobs int
	// QueueDepth is the number of outstanding requests per job.
	QueueDepth int
	// OpsPerWorker is how many 4 KB random reads each outstanding slot
	// issues.
	OpsPerWorker int
	// Seed seeds the random block selection.
	Seed int64
}

// RunFio replays a Fio-like 4 KB random-read workload against the device:
// Jobs*QueueDepth worker goroutines each issue OpsPerWorker back-to-back
// reads of random blocks. It reports the measured latency distribution and
// the bandwidth implied by the calibrated model at this load.
func RunFio(d *Device, cfg FioConfig) FioResult {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 200
	}
	workers := cfg.Jobs * cfg.QueueDepth
	hist := metrics.NewLatencyHistogram()
	var wg sync.WaitGroup
	var opsTotal metrics.Counter
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, BlockSize)
			for i := 0; i < cfg.OpsPerWorker; i++ {
				idx := rng.Intn(d.NumBlocks())
				lat, err := d.ReadBlockQD(idx, buf, cfg.QueueDepth)
				if err != nil {
					return
				}
				hist.Observe(lat)
				opsTotal.Inc()
			}
		}(cfg.Seed + int64(w))
	}
	wg.Wait()

	// Bandwidth comes from the calibrated model at this queue depth: the
	// measured sampler converges to the model's latency, and the model's
	// bandwidth column is what the paper reports for the same experiment.
	qd := float64(cfg.QueueDepth)
	return FioResult{
		QueueDepth:    cfg.QueueDepth,
		Jobs:          cfg.Jobs,
		Ops:           opsTotal.Value(),
		MeanLatencyUS: hist.Mean(),
		P90LatencyUS:  hist.P90(),
		P99LatencyUS:  hist.P99(),
		P999LatencyUS: hist.P999(),
		BandwidthGBs:  d.Model().BandwidthGBs(qd),
	}
}

// QueueDepthSweep runs RunFio for each queue depth and returns one result
// per depth — the rows of Figure 2.
func QueueDepthSweep(d *Device, jobs int, depths []int, opsPerWorker int, seed int64) []FioResult {
	results := make([]FioResult, 0, len(depths))
	for _, qd := range depths {
		results = append(results, RunFio(d, FioConfig{
			Jobs:         jobs,
			QueueDepth:   qd,
			OpsPerWorker: opsPerWorker,
			Seed:         seed + int64(qd)*1000,
		}))
	}
	return results
}

// ThroughputLatencyPoint is one point of the paper's Figure 5: the mean and
// P99 device latency observed when the application requests data at a given
// useful throughput, under a given effective-bandwidth fraction.
type ThroughputLatencyPoint struct {
	// AppThroughputMBs is the application-visible useful data rate.
	AppThroughputMBs float64
	MeanLatencyUS    float64
	P99LatencyUS     float64
	// Saturated marks points beyond the device's capability.
	Saturated bool
}

// ThroughputLatencyCurve evaluates the device model along a sweep of
// application throughputs. effectiveFraction is the fraction of each device
// block read that the application actually uses: 1.0 for 4 KB reads (the
// "100% effective bandwidth" line of Figure 5) and vectorBytes/BlockSize for
// the baseline policy (≈ 0.031 for 128 B vectors).
func ThroughputLatencyCurve(m *PerformanceModel, effectiveFraction float64, appThroughputsMBs []float64) []ThroughputLatencyPoint {
	if effectiveFraction <= 0 {
		effectiveFraction = 1
	}
	if effectiveFraction > 1 {
		effectiveFraction = 1
	}
	out := make([]ThroughputLatencyPoint, 0, len(appThroughputsMBs))
	for _, app := range appThroughputsMBs {
		deviceGBs := app / 1000.0 / effectiveFraction
		mean, p99 := m.LoadLatency(deviceGBs)
		p := ThroughputLatencyPoint{AppThroughputMBs: app, MeanLatencyUS: mean, P99LatencyUS: p99}
		if deviceGBs >= m.MaxBandwidthGBs() {
			p.Saturated = true
		}
		out = append(out, p)
	}
	return out
}
