package nvm

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Wrapped-ring crash recovery: a ring sized so records wrap repeatedly (9
// blocks = 36 KB, 8 KB per record, so every lap also needs a pad record to
// carry the sequence across the ring end), driven well past several laps,
// then crashed and reopened. Every block must come back with its last
// written image.
func TestRingJournalWrapRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 8, FileStoreOptions{RingBlocks: 9})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	shadow := make([][]byte, s.NumBlocks())
	for i := 0; i < 40; i++ {
		idx := rng.Intn(s.NumBlocks())
		src := make([]byte, BlockSize)
		rng.Read(src)
		if err := s.WriteBlock(idx, src); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		shadow[idx] = src
	}
	st := s.BackendStats()
	if st.JournalGCRuns < 1 {
		t.Fatalf("40 writes through a 36 KB ring ran %d GCs, want >= 1", st.JournalGCRuns)
	}
	if st.JournalBytesAppended <= st.JournalWrites*2*BlockSize-BlockSize {
		// 40 block records at 8 KB each plus at least one 4 KB pad per lap.
		t.Fatalf("JournalBytesAppended=%d suggests no pad records were written", st.JournalBytesAppended)
	}
	s.f.Close() // crash

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	for idx, want := range shadow {
		if want == nil {
			continue
		}
		if err := r.ReadBlock(idx, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("block %d diverges after wrapped-ring crash recovery", idx)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean close retires everything: the next open replays nothing.
	r2, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.BackendStats().RecoveredRecords; got != 0 {
		t.Fatalf("recovered %d records after clean close, want 0", got)
	}
}

// Torn-watermark fallback: corrupt the newest watermark slot after a crash
// and the open must fall back to the previous generation, whose (longer)
// record chain is still intact, and replay every record since.
func TestRingJournalTornWatermarkFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 8, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.WriteBlock(i, fillBlock(byte(0x10+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Manual GC persists watermark generation 2 (create wrote generation 1).
	if err := s.ring.gc(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(3, fillBlock(0x77)); err != nil {
		t.Fatal(err)
	}
	newestSlot := s.ring.wmOff(2)
	s.f.Close() // crash

	// Simulate the generation-2 watermark pwrite having been torn: flip a
	// byte inside its CRC-protected region.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, newestSlot+20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Fallback to generation 1 rescans the whole chain: all 4 block records.
	if got := r.BackendStats().RecoveredRecords; got != 4 {
		t.Fatalf("recovered %d records via watermark fallback, want 4", got)
	}
	dst := make([]byte, BlockSize)
	for i := 0; i < 3; i++ {
		if err := r.ReadBlock(i, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, fillBlock(byte(0x10+i))) {
			t.Fatalf("block %d diverges after watermark fallback", i)
		}
	}
	if err := r.ReadBlock(3, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, fillBlock(0x77)) {
		t.Fatal("block 3 diverges after watermark fallback")
	}
}

// GC mid-crash: tear the watermark pwrite itself. Whatever prefix of the
// watermark lands (valid-looking or garbage), recovery must still produce
// correct block contents — GC only ever advances the head over records whose
// in-place writes are already durable, so both the old and the new watermark
// describe a consistent state.
func TestRingJournalGCCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 8, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.WriteBlock(i, fillBlock(byte(0x20+i))); err != nil {
			t.Fatal(err)
		}
	}
	s.failAfterWrites(1) // the next pwrite is the GC watermark
	if err := s.ring.gc(); err == nil {
		t.Fatal("expected injected fault during GC watermark write")
	}
	s.faultArmed.Store(false)
	s.f.Close() // crash

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.BackendStats().RecoveredRecords; got > 3 {
		t.Fatalf("recovered %d records, want <= 3", got)
	}
	dst := make([]byte, BlockSize)
	for i := 0; i < 3; i++ {
		if err := r.ReadBlock(i, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, fillBlock(byte(0x20+i))) {
			t.Fatalf("block %d diverges after GC-crash recovery", i)
		}
	}
}

// A failed in-place write pins the ring head (its record is the only good
// copy of the block). When the ring then fills, append must fail fast with a
// repair hint instead of waiting forever — and a reopen must replay the
// pinned record, repairing the torn block.
func TestRingJournalFullPinnedByFailedWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 8, FileStoreOptions{RingBlocks: minRingBlocks})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(0, fillBlock(0x01)); err != nil {
		t.Fatal(err)
	}
	// Tear the in-place write of block 1 (pwrite 1 = journal append, pwrite
	// 2 = in-place): its record pins the GC head.
	s.failAfterWrites(2)
	if err := s.WriteBlock(1, fillBlock(0xBB)); err == nil {
		t.Fatal("expected injected write fault")
	}
	s.faultArmed.Store(false)
	if got := s.BackendStats().FailedWriteRecords; got != 1 {
		t.Fatalf("FailedWriteRecords = %d, want 1", got)
	}

	// Keep writing other blocks until the pinned ring runs out of space.
	var fullErr error
	for i := 0; i < 10; i++ {
		if err := s.WriteBlock(2+i%6, fillBlock(byte(i))); err != nil {
			fullErr = err
			break
		}
	}
	if fullErr == nil {
		t.Fatal("pinned ring never reported full")
	}
	if !strings.Contains(fullErr.Error(), "pinned by a failed block write") {
		t.Fatalf("full-ring error = %v, want the pinned-repair hint", fullErr)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen repairs: the pinned record replays, block 1 gets the attempted
	// image, and the store accepts writes again.
	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.BackendStats().RecoveredRecords; got < 1 {
		t.Fatalf("recovered %d records, want >= 1", got)
	}
	dst := make([]byte, BlockSize)
	if err := r.ReadBlock(1, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, fillBlock(0xBB)) {
		t.Fatal("pinned record did not repair the torn block at reopen")
	}
	if err := r.WriteBlock(5, fillBlock(0x5A)); err != nil {
		t.Fatalf("write after repair: %v", err)
	}
}
