package nvm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestAlignedBufPoolAlignment(t *testing.T) {
	for i := 0; i < 32; i++ {
		bp := GetBlockBuf()
		if !isAligned(*bp) || len(*bp) != BlockSize {
			t.Fatalf("GetBlockBuf: addr %p len %d not a BlockSize-aligned block", *bp, len(*bp))
		}
		PutBlockBuf(bp)
	}
	for _, blocks := range []int{1, 3, 8, 17, 64} {
		bp := GetBatchBuf(blocks)
		if !isAligned(*bp) || len(*bp) != blocks*BlockSize {
			t.Fatalf("GetBatchBuf(%d): addr %p len %d misaligned", blocks, *bp, len(*bp))
		}
		PutBatchBuf(bp)
	}
	// The allocator must produce aligned slices for any size.
	for _, n := range []int{1, BlockSize - 1, BlockSize, BlockSize + 1, 10 * BlockSize} {
		b := alignedBytes(n)
		if len(b) != n || uintptr(unsafe.Pointer(&b[0]))&(BlockSize-1) != 0 {
			t.Fatalf("alignedBytes(%d): len %d addr %p", n, len(b), b)
		}
	}
}

// requireDirect skips the test (with a notice) when the filesystem under dir
// rejects O_DIRECT — e.g. tmpfs runners.
func requireDirect(t *testing.T, dir string) {
	t.Helper()
	if !DirectIOSupported(dir) {
		t.Skipf("skipping: filesystem at %s rejects O_DIRECT", dir)
	}
}

// Property test for the tentpole's alignment invariant: in direct mode every
// pread/pwrite the store hands to the kernel must have a BlockSize-aligned
// offset, length and buffer address — across writes, reads (aligned and
// unaligned callers), bulk loads, journal GC, create, and open/replay.
func TestFileStoreDirectAlignmentInvariants(t *testing.T) {
	dir := t.TempDir()
	requireDirect(t, dir)
	path := filepath.Join(dir, "nvm.bnd")

	var mu sync.Mutex
	var violations []string
	check := func(op string, off int64, p []byte) {
		ok := off%BlockSize == 0 && len(p)%BlockSize == 0 && isAligned(p)
		if !ok {
			mu.Lock()
			violations = append(violations, fmt.Sprintf("%s off=%d len=%d aligned=%v", op, off, len(p), isAligned(p)))
			mu.Unlock()
		}
	}
	ioCheckHook = check
	defer func() { ioCheckHook = nil }()

	const numBlocks = 32
	s, err := CreateFileStore(path, numBlocks, FileStoreOptions{Direct: true, RingBlocks: minRingBlocks})
	if err != nil {
		t.Fatal(err)
	}
	if !s.DirectIO() {
		t.Fatal("direct mode not negotiated on a supporting filesystem")
	}

	rng := rand.New(rand.NewSource(7))
	shadow := make(map[int][]byte)
	unalignedDst := make([]byte, BlockSize+1)[1:] // deliberately misaligned caller buffer
	for op := 0; op < 300; op++ {
		idx := rng.Intn(numBlocks)
		switch rng.Intn(6) {
		case 0, 1:
			src := make([]byte, BlockSize)
			rng.Read(src)
			if err := s.WriteBlock(idx, src); err != nil {
				t.Fatal(err)
			}
			shadow[idx] = src
		case 2:
			src := make([]byte, BlockSize)
			rng.Read(src)
			if err := s.WriteBlockUnjournaled(idx, src); err != nil {
				t.Fatal(err)
			}
			shadow[idx] = src
		case 3: // contiguous bulk write from an unaligned caller buffer
			n := 1 + rng.Intn(4)
			if idx+n > numBlocks {
				n = numBlocks - idx
			}
			src := make([]byte, n*BlockSize+1)[1:]
			rng.Read(src)
			if err := s.WriteBlocksUnjournaled(idx, src); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				shadow[idx+i] = append([]byte(nil), src[i*BlockSize:(i+1)*BlockSize]...)
			}
		case 5: // journaled sub-block patch from an unaligned caller slice
			off := rng.Intn(BlockSize - 1)
			p := make([]byte, 1+rng.Intn(BlockSize-off)+1)[1:]
			rng.Read(p)
			if err := s.WriteBlockPatch(idx, off, p); err != nil {
				t.Fatal(err)
			}
			want, ok := shadow[idx]
			if !ok {
				want = make([]byte, BlockSize) // blocks start zeroed
				shadow[idx] = want
			}
			copy(want[off:], p)
		case 4:
			want, ok := shadow[idx]
			if !ok {
				continue
			}
			dst := unalignedDst
			if rng.Intn(2) == 0 {
				bp := GetBlockBuf()
				defer PutBlockBuf(bp)
				dst = *bp
			}
			if err := s.ReadBlock(idx, dst); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst[:BlockSize], want) {
				t.Fatalf("op %d: block %d content mismatch", op, idx)
			}
		}
	}
	// Crash (no clean close) and reopen in direct mode: the replay path must
	// obey the invariant too.
	s.f.Close()
	r, err := OpenFileStore(path, FileStoreOptions{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	for idx, want := range shadow {
		if err := r.ReadBlock(idx, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("block %d lost across direct-mode crash/reopen", idx)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(violations) > 0 {
		t.Fatalf("%d unaligned I/Os in direct mode, e.g. %s", len(violations), violations[0])
	}
}

// The tentpole's write-path pin: a steady-state journaled WriteBlock is
// exactly 2 pwrites — 1 sequential ring-journal append + 1 in-place write —
// observed at the syscall choke point and cross-checked against the
// device-stats counters.
func TestFileStoreWriteBlockExactlyTwoPwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 64, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var pwrites atomic.Int64
	s.ioCheck = func(op string, off int64, p []byte) {
		if op == "pwrite" {
			pwrites.Add(1)
		}
	}
	const n = 20 // small enough that no GC watermark write or wrap pad fires
	for i := 0; i < n; i++ {
		if err := s.WriteBlock(i%s.NumBlocks(), fillBlock(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.ioCheck = nil
	if got := pwrites.Load(); got != 2*n {
		t.Fatalf("%d journaled writes issued %d pwrites, want exactly %d (1 append + 1 in-place each)", n, got, 2*n)
	}
	st := s.BackendStats()
	if st.JournalWrites != n || st.DataWrites != n {
		t.Fatalf("stats JournalWrites=%d DataWrites=%d, want %d each", st.JournalWrites, st.DataWrites, n)
	}
	if st.JournalBytesAppended < int64(n)*BlockSize {
		t.Fatalf("JournalBytesAppended=%d implausibly small", st.JournalBytesAppended)
	}
}

// The update path's pin: a steady-state journaled WriteBlockPatch is also
// exactly 2 pwrites — 1 sub-page ring append (header+payload only) + 1
// sub-block in-place write — and the in-place write is patch-sized, not a
// full page.
func TestFileStorePatchWriteExactlyTwoPwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 64, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var pwrites, pwriteBytes atomic.Int64
	s.ioCheck = func(op string, off int64, p []byte) {
		if op == "pwrite" {
			pwrites.Add(1)
			pwriteBytes.Add(int64(len(p)))
		}
	}
	const n = 20
	const patchLen = 128
	p := make([]byte, patchLen)
	for i := 0; i < n; i++ {
		p[0] = byte(i)
		if err := s.WriteBlockPatch(i%s.NumBlocks(), 256, p); err != nil {
			t.Fatal(err)
		}
	}
	s.ioCheck = nil
	if got := pwrites.Load(); got != 2*n {
		t.Fatalf("%d patch writes issued %d pwrites, want exactly %d (1 append + 1 in-place each)", n, got, 2*n)
	}
	// Buffered mode persists only header+payload of the append span plus the
	// patch bytes in place: far below a page per pwrite.
	if got, max := pwriteBytes.Load(), int64(n)*(ringHdrBytes+2*patchLen); got > max {
		t.Fatalf("%d patch writes moved %d bytes through pwrite, want <= %d (sub-page appends)", n, got, max)
	}
	st := s.BackendStats()
	if st.JournalWrites != n || st.DataWrites != n {
		t.Fatalf("stats JournalWrites=%d DataWrites=%d, want %d each", st.JournalWrites, st.DataWrites, n)
	}
}

// A torn in-place patch write must be repaired from its ring record at the
// next open, exactly like a torn full-block write.
func TestFileStorePatchCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 8, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(3, fillBlock(0xAA)); err != nil {
		t.Fatal(err)
	}
	patch := bytes.Repeat([]byte{0x5A}, 200)
	if err := s.WriteBlockPatch(3, 1000, patch); err != nil {
		t.Fatal(err)
	}
	// Tear the next patch's in-place write (pwrite #1 is its ring append).
	torn := bytes.Repeat([]byte{0xC3}, 200)
	s.failAfterWrites(2)
	if err := s.WriteBlockPatch(3, 3000, torn); err == nil {
		t.Fatal("expected injected write fault")
	}
	s.f.Close() // crash

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.BackendStats().RecoveredRecords; got < 1 {
		t.Fatalf("recovered %d records, want >= 1", got)
	}
	want := fillBlock(0xAA)
	copy(want[1000:], patch)
	copy(want[3000:], torn)
	dst := make([]byte, BlockSize)
	if err := r.ReadBlock(3, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Fatal("torn in-place patch not repaired from the ring record")
	}
}

// A bulk (unjournaled) overwrite tombstones live patch records of its blocks
// before the bulk bytes land: a crash right after must not replay a stale
// patch over the new image.
func TestFileStorePatchSupersededByBulkWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 8, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlockPatch(2, 100, bytes.Repeat([]byte{0xAB}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlockUnjournaled(2, fillBlock(0x11)); err != nil {
		t.Fatal(err)
	}
	s.f.Close() // crash before any GC retired the patch record

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dst := make([]byte, BlockSize)
	if err := r.ReadBlock(2, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, fillBlock(0x11)) {
		t.Fatal("stale patch record replayed over a newer bulk write")
	}
}

// Exclusive open: a second opener (same or another process — flock is per
// open file description) must fail fast with ErrStoreLocked, not interleave
// journal writes.
func TestFileStoreExclusiveLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 4, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, FileStoreOptions{}); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("second open: err = %v, want ErrStoreLocked", err)
	}
	if _, err := CreateFileStore(path, 4, FileStoreOptions{}); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("create over locked store: err = %v, want ErrStoreLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	r.Close()
}

// Direct-mode auto-negotiation: on a filesystem that rejects O_DIRECT
// (tmpfs) the store must fall back to buffered I/O and still work, with
// BackendStats reporting DirectIO=false.
func TestFileStoreDirectFallback(t *testing.T) {
	const shm = "/dev/shm"
	if fi, err := os.Stat(shm); err != nil || !fi.IsDir() {
		t.Skip("no /dev/shm tmpfs available")
	}
	if DirectIOSupported(shm) {
		t.Skipf("%s unexpectedly supports O_DIRECT; cannot exercise fallback", shm)
	}
	dir, err := os.MkdirTemp(shm, "bnd-fallback-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	path := filepath.Join(dir, "nvm.bnd")
	s, err := CreateFileStore(path, 4, FileStoreOptions{Direct: true})
	if err != nil {
		t.Fatalf("create with Direct on tmpfs must fall back, got %v", err)
	}
	if s.DirectIO() || s.BackendStats().DirectIO {
		t.Fatal("fallback store still claims direct I/O")
	}
	if err := s.WriteBlock(1, fillBlock(0x42)); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	if err := s.ReadBlock(1, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, fillBlock(0x42)) {
		t.Fatal("fallback store round trip failed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Direct mode must survive a crash/reopen cycle with the same guarantees as
// buffered mode (the kill -9 suite runs at the core layer; this is the nvm
// unit version).
func TestFileStoreDirectCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	requireDirect(t, dir)
	path := filepath.Join(dir, "nvm.bnd")
	s, err := CreateFileStore(path, 8, FileStoreOptions{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(3, fillBlock(0xAA)); err != nil {
		t.Fatal(err)
	}
	// Tear the in-place write: the journal record must repair it at reopen.
	s.failAfterWrites(2)
	if err := s.WriteBlock(3, fillBlock(0x55)); err == nil {
		t.Fatal("expected injected write fault")
	}
	s.f.Close() // crash

	r, err := OpenFileStore(path, FileStoreOptions{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.DirectIO() {
		t.Fatal("reopen lost direct mode")
	}
	if got := r.BackendStats().RecoveredRecords; got < 1 {
		t.Fatalf("recovered %d records, want >= 1", got)
	}
	dst := make([]byte, BlockSize)
	if err := r.ReadBlock(3, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, fillBlock(0x55)) {
		t.Fatal("torn in-place write not repaired in direct mode")
	}
}
