package nvm

import (
	"sync"
	"unsafe"
)

// Direct I/O requires every buffer address, file offset and transfer length
// to be aligned to the device's logical block size. We align everything to
// BlockSize (4 KB), which satisfies any Linux block device, and hand the same
// aligned memory to every caller — the journaled write path, the zero-copy
// read views, and the iosched batch buffers — so direct mode adds no bounce
// copies on the hot path.

// alignedBytes returns a length-n slice whose backing array starts on a
// BlockSize boundary. It over-allocates by one block and slices at the first
// aligned offset; Go's garbage collector does not move heap objects, so the
// alignment is stable for the buffer's lifetime.
func alignedBytes(n int) []byte {
	raw := make([]byte, n+BlockSize)
	off := int(uintptr(unsafe.Pointer(&raw[0])) & (BlockSize - 1))
	if off != 0 {
		off = BlockSize - off
	}
	return raw[off : off+n : off+n]
}

// isAligned reports whether the slice's backing address is BlockSize-aligned.
// A nil/empty slice is trivially aligned (no transfer will use it).
func isAligned(p []byte) bool {
	if len(p) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&p[0]))&(BlockSize-1) == 0
}

// blockBufPool recycles BlockSize-aligned scratch buffers for this package
// and its callers (see GetBlockBuf).
var blockBufPool = sync.Pool{
	New: func() any {
		b := alignedBytes(BlockSize)
		return &b
	},
}

// GetBlockBuf returns a pooled BlockSize scratch buffer whose backing memory
// is BlockSize-aligned (safe to hand to a direct-I/O pread/pwrite); release
// it with PutBlockBuf. Contents are undefined.
func GetBlockBuf() *[]byte { return blockBufPool.Get().(*[]byte) }

// PutBlockBuf returns a buffer obtained from GetBlockBuf to the pool.
func PutBlockBuf(b *[]byte) { blockBufPool.Put(b) }

// batchBufCap is the pooled batch buffer capacity: large enough for the
// common miss-path batch so steady state never allocates.
const batchBufCap = 8 * BlockSize

// batchBufPool recycles aligned multi-block buffers for batched reads.
var batchBufPool = sync.Pool{
	New: func() any {
		b := alignedBytes(batchBufCap)
		return &b
	},
}

// GetBatchBuf returns an aligned buffer sized for n blocks; release it with
// PutBatchBuf. Buffers for more than 8 blocks are allocated (aligned) rather
// than pooled.
func GetBatchBuf(n int) *[]byte {
	need := n * BlockSize
	if need <= batchBufCap {
		bp := batchBufPool.Get().(*[]byte)
		b := (*bp)[:need]
		return &b
	}
	b := alignedBytes(need)
	return &b
}

// PutBatchBuf returns a buffer obtained from GetBatchBuf to the pool.
func PutBatchBuf(b *[]byte) {
	if cap(*b) >= batchBufCap {
		full := (*b)[:batchBufCap]
		batchBufPool.Put(&full)
	}
}
