package nvm

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemStoreReadWrite(t *testing.T) {
	s := NewMemStore(8)
	if s.NumBlocks() != 8 {
		t.Fatalf("NumBlocks = %d", s.NumBlocks())
	}
	src := make([]byte, BlockSize)
	for i := range src {
		src[i] = byte(i)
	}
	if err := s.WriteBlock(3, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	if err := s.ReadBlock(3, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

func TestMemStorePartialWriteZeroFills(t *testing.T) {
	s := NewMemStore(2)
	full := make([]byte, BlockSize)
	for i := range full {
		full[i] = 0xFF
	}
	s.WriteBlock(0, full)
	s.WriteBlock(0, []byte{1, 2, 3})
	dst := make([]byte, BlockSize)
	s.ReadBlock(0, dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("prefix lost: %v", dst[:4])
	}
	for i := 3; i < BlockSize; i++ {
		if dst[i] != 0 {
			t.Fatalf("byte %d not zeroed after partial write", i)
		}
	}
}

func TestMemStoreBoundsErrors(t *testing.T) {
	s := NewMemStore(2)
	buf := make([]byte, BlockSize)
	if err := s.ReadBlock(-1, buf); err == nil {
		t.Fatal("expected error for negative index")
	}
	if err := s.ReadBlock(2, buf); err == nil {
		t.Fatal("expected error for index beyond capacity")
	}
	if err := s.ReadBlock(0, make([]byte, 10)); err == nil {
		t.Fatal("expected error for short destination")
	}
	if err := s.WriteBlock(5, buf); err == nil {
		t.Fatal("expected error for out of range write")
	}
	if err := s.WriteBlock(0, make([]byte, BlockSize+1)); err == nil {
		t.Fatal("expected error for oversized write")
	}
}

func TestMemStorePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMemStore(0)
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.dat")
	s, err := NewFileStore(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src := make([]byte, BlockSize)
	copy(src, []byte("hello nvm"))
	if err := s.WriteBlock(2, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	if err := s.ReadBlock(2, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst[:9]) != "hello nvm" {
		t.Fatalf("got %q", dst[:9])
	}
	// Superblock + watermark blocks + ring journal region + 4 data blocks.
	want := int64(metaBlocks+s.RingBlocks()+4) * BlockSize
	if fi, err := os.Stat(path); err != nil || fi.Size() != want {
		t.Fatalf("file size = %v err %v, want %d", fi, err, want)
	}
	if err := s.ReadBlock(9, dst); err == nil {
		t.Fatal("expected range error")
	}
}

func TestFileStoreInvalid(t *testing.T) {
	if _, err := NewFileStore(filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Fatal("expected error for zero blocks")
	}
	if _, err := NewFileStore(filepath.Join(t.TempDir(), "nodir", "deep", "x"), 1); err == nil {
		t.Fatal("expected error for bad path")
	}
}

func TestModelCalibrationMonotonicity(t *testing.T) {
	m := NewPerformanceModel(nil)
	prevLat, prevBW := 0.0, 0.0
	for _, qd := range []float64{1, 1.5, 2, 3, 4, 6, 8, 16} {
		lat := m.MeanLatencyUS(qd)
		bw := m.BandwidthGBs(qd)
		if lat < prevLat {
			t.Fatalf("latency not monotonic at qd %.1f: %.2f < %.2f", qd, lat, prevLat)
		}
		if bw < prevBW {
			t.Fatalf("bandwidth not monotonic at qd %.1f", qd)
		}
		if p99 := m.P99LatencyUS(qd); p99 < lat {
			t.Fatalf("p99 %.2f below mean %.2f at qd %.1f", p99, lat, qd)
		}
		prevLat, prevBW = lat, bw
	}
	// Saturation: beyond the last calibration point values stay flat.
	if m.BandwidthGBs(64) != m.MaxBandwidthGBs() {
		t.Fatalf("bandwidth should saturate at max")
	}
	if m.MeanLatencyUS(0.2) != m.MeanLatencyUS(1) {
		t.Fatalf("queue depth below 1 should clamp")
	}
}

func TestModelMatchesPaperShape(t *testing.T) {
	m := NewPerformanceModel(nil)
	// The paper's headline numbers: ~2.3 GB/s at QD 8, >30x below DRAM's
	// ~75 GB/s, and latency in the tens of microseconds.
	if bw := m.BandwidthGBs(8); math.Abs(bw-2.3) > 0.2 {
		t.Fatalf("QD8 bandwidth = %.2f, want ~2.3", bw)
	}
	if 75.0/m.MaxBandwidthGBs() < 30 {
		t.Fatalf("DRAM/NVM bandwidth ratio should exceed 30x")
	}
	if lat := m.MeanLatencyUS(1); lat < 5 || lat > 20 {
		t.Fatalf("unloaded latency = %.1f us, want ~10", lat)
	}
}

func TestLoadLatencyHockeyStick(t *testing.T) {
	m := NewPerformanceModel(nil)
	low, _ := m.LoadLatency(0.1)
	mid, _ := m.LoadLatency(1.5)
	high, p99High := m.LoadLatency(2.2)
	if !(low < mid && mid < high) {
		t.Fatalf("latency must grow with load: %.1f %.1f %.1f", low, mid, high)
	}
	if p99High < high {
		t.Fatalf("p99 below mean at high load")
	}
	if sat, _ := m.LoadLatency(5.0); !math.IsInf(sat, 1) {
		t.Fatalf("over-saturated load should return +Inf")
	}
	if unl, _ := m.LoadLatency(0); unl != m.MinLatencyUS() {
		t.Fatalf("zero load should return unloaded latency")
	}
}

func TestSampleLatencyMatchesModelMean(t *testing.T) {
	m := NewPerformanceModel(nil)
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += m.SampleLatencyUS(rng, 4)
	}
	mean := sum / n
	want := m.MeanLatencyUS(4)
	if math.Abs(mean-want)/want > 0.10 {
		t.Fatalf("sampled mean %.2f deviates from model mean %.2f", mean, want)
	}
	if s := m.SampleLatencyUS(rng, 0); s <= 0 {
		t.Fatalf("sample with zero inflight should clamp to 1, got %g", s)
	}
}

func TestCustomCalibrationSorted(t *testing.T) {
	m := NewPerformanceModel([]CalibrationPoint{
		{QueueDepth: 8, MeanLatencyUS: 40, P99LatencyUS: 90, BandwidthGBs: 2.0},
		{QueueDepth: 1, MeanLatencyUS: 8, P99LatencyUS: 12, BandwidthGBs: 0.5},
	})
	if m.MinLatencyUS() != 8 {
		t.Fatalf("points not sorted: min latency %.1f", m.MinLatencyUS())
	}
	if m.MaxBandwidthGBs() != 2.0 {
		t.Fatalf("max bandwidth %.1f", m.MaxBandwidthGBs())
	}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}

func TestDeviceReadWriteAndStats(t *testing.T) {
	d := NewDevice(DeviceConfig{NumBlocks: 16, Seed: 1})
	defer d.Close()
	src := make([]byte, BlockSize)
	src[0] = 42
	if err := d.WriteBlock(5, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	lat, err := d.ReadBlock(5, dst)
	if err != nil {
		t.Fatal(err)
	}
	if dst[0] != 42 {
		t.Fatalf("data mismatch")
	}
	if lat <= 0 {
		t.Fatalf("latency should be positive")
	}
	s := d.Stats()
	if s.BlocksRead != 1 || s.BlocksWritten != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.BytesRead != BlockSize {
		t.Fatalf("bytes read %d", s.BytesRead)
	}
	if s.ReadLatency.Count != 1 {
		t.Fatalf("latency histogram not recorded")
	}
	if s.EnduranceDWPD != 30 {
		t.Fatalf("default endurance should be 30 DWPD")
	}
	d.ResetStats()
	if d.Stats().BlocksRead != 0 {
		t.Fatalf("reset failed")
	}
	if d.String() == "" {
		t.Fatal("empty device description")
	}
	if d.CapacityBytes() != 16*BlockSize {
		t.Fatalf("capacity %d", d.CapacityBytes())
	}
}

func TestDeviceReadErrorPropagates(t *testing.T) {
	d := NewDevice(DeviceConfig{NumBlocks: 2, Seed: 1})
	if _, err := d.ReadBlock(10, make([]byte, BlockSize)); err == nil {
		t.Fatal("expected error")
	}
	if d.Stats().BlocksRead != 0 {
		t.Fatalf("failed read must not be counted")
	}
}

func TestDeviceConcurrentReads(t *testing.T) {
	d := NewDevice(DeviceConfig{NumBlocks: 64, Seed: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, BlockSize)
			for i := 0; i < 200; i++ {
				if _, err := d.ReadBlock(rng.Intn(64), buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if d.Stats().BlocksRead != 1600 {
		t.Fatalf("blocks read = %d", d.Stats().BlocksRead)
	}
}

func TestDriveWritesAccounting(t *testing.T) {
	d := NewDevice(DeviceConfig{NumBlocks: 4, Seed: 1, EnduranceDWPD: 10})
	buf := make([]byte, BlockSize)
	for i := 0; i < 8; i++ {
		d.WriteBlock(i%4, buf)
	}
	s := d.Stats()
	if math.Abs(s.DriveWrites-2.0) > 1e-9 {
		t.Fatalf("drive writes = %g, want 2", s.DriveWrites)
	}
	if s.EnduranceDWPD != 10 {
		t.Fatalf("endurance = %g", s.EnduranceDWPD)
	}
}

func TestRunFioProducesReasonableRow(t *testing.T) {
	d := NewDevice(DeviceConfig{NumBlocks: 1024, Seed: 3})
	res := RunFio(d, FioConfig{Jobs: 2, QueueDepth: 4, OpsPerWorker: 100, Seed: 9})
	if res.Ops != 2*4*100 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.MeanLatencyUS <= 0 || res.P99LatencyUS < res.MeanLatencyUS {
		t.Fatalf("latency stats implausible: %+v", res)
	}
	if res.BandwidthGBs != d.Model().BandwidthGBs(4) {
		t.Fatalf("bandwidth should come from the calibrated model")
	}
}

func TestRunFioDefaults(t *testing.T) {
	d := NewDevice(DeviceConfig{NumBlocks: 128, Seed: 3})
	res := RunFio(d, FioConfig{})
	if res.Jobs != 4 || res.QueueDepth != 1 {
		t.Fatalf("defaults not applied: %+v", res)
	}
}

func TestQueueDepthSweepMonotoneBandwidth(t *testing.T) {
	d := NewDevice(DeviceConfig{NumBlocks: 1024, Seed: 4})
	rows := QueueDepthSweep(d, 4, []int{1, 2, 4, 8}, 50, 7)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].BandwidthGBs < rows[i-1].BandwidthGBs {
			t.Fatalf("bandwidth should not decrease with queue depth")
		}
		if rows[i].MeanLatencyUS < rows[i-1].MeanLatencyUS*0.8 {
			t.Fatalf("latency should grow (roughly) with queue depth")
		}
	}
}

func TestThroughputLatencyCurveBaselineVsFull(t *testing.T) {
	m := NewPerformanceModel(nil)
	sweep := []float64{10, 50, 100, 500, 1000, 2000, 4000}
	baseline := ThroughputLatencyCurve(m, 128.0/BlockSize, sweep)
	full := ThroughputLatencyCurve(m, 1.0, sweep)
	if len(baseline) != len(sweep) || len(full) != len(sweep) {
		t.Fatalf("curve lengths wrong")
	}
	// The baseline saturates at ~3% of 2.3 GB/s ≈ 72 MB/s of useful data,
	// so by 100 MB/s it must be saturated while the 4 KB curve is healthy.
	if !baseline[2].Saturated {
		t.Fatalf("baseline should be saturated at 100 MB/s")
	}
	if full[2].Saturated {
		t.Fatalf("100%% effective bandwidth curve should not be saturated at 100 MB/s")
	}
	// At low load the two have comparable latency; where both are defined
	// the baseline is always >= the full-read curve.
	for i := range sweep {
		if !baseline[i].Saturated && baseline[i].MeanLatencyUS < full[i].MeanLatencyUS {
			t.Fatalf("baseline latency below 4KB-read latency at %v MB/s", sweep[i])
		}
	}
	// Full curve must saturate eventually too (2.3 GB/s < 4 GB/s).
	if !full[len(full)-1].Saturated {
		t.Fatalf("full curve should saturate at 4 GB/s")
	}
}

func TestThroughputLatencyCurveClampsFraction(t *testing.T) {
	m := NewPerformanceModel(nil)
	pts := ThroughputLatencyCurve(m, 0, []float64{10})
	if pts[0].Saturated {
		t.Fatalf("fraction 0 should clamp to 1 (not saturate at 10 MB/s)")
	}
	pts = ThroughputLatencyCurve(m, 5, []float64{10})
	if pts[0].Saturated {
		t.Fatalf("fraction >1 should clamp to 1")
	}
}

func TestPropertyModelInterpolationWithinBounds(t *testing.T) {
	m := NewPerformanceModel(nil)
	prop := func(qdRaw uint8) bool {
		qd := 1 + float64(qdRaw%16)
		lat := m.MeanLatencyUS(qd)
		return lat >= m.MinLatencyUS()-1e-9 && lat <= m.MeanLatencyUS(8)+1e-9 || qd > 8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDeviceReadBlock(b *testing.B) {
	d := NewDevice(DeviceConfig{NumBlocks: 4096, Seed: 1})
	buf := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ReadBlock(i%4096, buf)
	}
}
