package nvm

import (
	"fmt"
	"sync"
)

// BlockStore is the backing storage of a simulated NVM device: a flat array
// of fixed-size blocks. Implementations must be safe for concurrent use.
type BlockStore interface {
	// NumBlocks returns the number of addressable blocks.
	NumBlocks() int
	// ReadBlock copies block idx into dst (which must be BlockSize bytes).
	ReadBlock(idx int, dst []byte) error
	// ReadBlocks copies block idxs[i] into dst[i*BlockSize:(i+1)*BlockSize]
	// for every i — the batched read path used by LookupBatch misses.
	ReadBlocks(idxs []int, dst []byte) error
	// WriteBlock stores src (at most BlockSize bytes) as block idx.
	WriteBlock(idx int, src []byte) error
	// Close releases resources.
	Close() error
}

// Flusher is implemented by block stores that buffer writes (FileStore);
// Flush forces them to stable storage.
type Flusher interface {
	Flush() error
}

// BulkWriter is implemented by block stores that offer an unjournaled
// bulk-load write path (FileStore). Use it only when crash-atomicity is
// provided at a higher level — a torn unjournaled write leaves a mixed
// block, so the caller must be able to detect the interruption and redo the
// whole load (see core's manifest / rewrite-marker commit points).
type BulkWriter interface {
	WriteBlockUnjournaled(idx int, src []byte) error
}

// PatchWriter is implemented by block stores with a journaled sub-block
// write path: WriteBlockPatch updates len(p) bytes of block idx starting at
// byte offset off, with the same crash guarantees as WriteBlock but without
// the caller having to read, patch and rewrite the whole block. It is the
// single-vector update path — on the file backend a patch costs one journal
// append plus one sub-block pwrite instead of a block read plus two
// full-page writes.
type PatchWriter interface {
	WriteBlockPatch(idx, off int, p []byte) error
}

// RangeBulkWriter is implemented by block stores that can install a
// contiguous run of blocks in one operation (a single pwrite on the file
// backend). It is the copy-in path of background layout migration: the
// staged image of a whole table lands in its block range at device
// bandwidth instead of block by block. Same crash-safety contract as
// BulkWriter — the caller owns the commit point and must redo the whole
// range if interrupted.
type RangeBulkWriter interface {
	// WriteBlocksUnjournaled writes len(src)/BlockSize consecutive blocks
	// starting at block base. len(src) must be a multiple of BlockSize.
	WriteBlocksUnjournaled(base int, src []byte) error
}

// BackendStats describes a block store backend for reporting.
type BackendStats struct {
	// Backend names the backing medium ("mem" or "file").
	Backend string
	// DirectIO reports whether the file backend is running O_DIRECT
	// (page-cache-bypassing) I/O after auto-negotiation.
	DirectIO bool
	// JournalWrites counts write-ahead journal records appended (file only;
	// one per WriteBlock or WriteBlockPatch).
	JournalWrites int64
	// JournalBytesAppended counts bytes appended to the ring journal,
	// including record headers, alignment padding and wrap pads (file only).
	JournalBytesAppended int64
	// JournalGCRuns counts watermark advances that retired journal records
	// (file only).
	JournalGCRuns int64
	// RingUtilization is the live fraction of the ring journal region at
	// snapshot time — sustained values near 1.0 mean writers outrun
	// retirement (file only).
	RingUtilization float64
	// DataWrites counts journaled in-place data-region writes (file only;
	// one per successful WriteBlock or WriteBlockPatch — with JournalWrites
	// this pins the 2-pwrites-per-write steady state).
	DataWrites int64
	// FailedWriteRecords counts journal records pinned by a failed in-place
	// write; they replay at the next open (file only).
	FailedWriteRecords int64
	// Flushes counts explicit or periodic fsyncs (file only).
	Flushes int64
	// RecoveredRecords counts journal records replayed at open (file only).
	RecoveredRecords int64
}

// BackendStatser is implemented by block stores that report backend
// statistics through Device.Stats.
type BackendStatser interface {
	BackendStats() BackendStats
}

// MemStore is a RAM-backed block store. It is the default backing for the
// simulated device: the latency/bandwidth behaviour comes from the
// PerformanceModel, not from the backing medium.
type MemStore struct {
	mu   sync.RWMutex
	data []byte
	n    int
}

// NewMemStore creates a RAM-backed store with numBlocks blocks.
func NewMemStore(numBlocks int) *MemStore {
	if numBlocks <= 0 {
		panic(fmt.Sprintf("nvm: invalid block count %d", numBlocks))
	}
	return &MemStore{data: make([]byte, numBlocks*BlockSize), n: numBlocks}
}

// NumBlocks implements BlockStore.
func (s *MemStore) NumBlocks() int { return s.n }

// ReadBlock implements BlockStore.
func (s *MemStore) ReadBlock(idx int, dst []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(dst) < BlockSize {
		return fmt.Errorf("nvm: destination buffer too small: %d", len(dst))
	}
	s.mu.RLock()
	copy(dst[:BlockSize], s.data[idx*BlockSize:])
	s.mu.RUnlock()
	return nil
}

// ReadBlocks implements BlockStore, copying the whole batch under one shared
// lock acquisition.
func (s *MemStore) ReadBlocks(idxs []int, dst []byte) error {
	if len(dst) < len(idxs)*BlockSize {
		return fmt.Errorf("nvm: destination buffer too small for %d blocks: %d", len(idxs), len(dst))
	}
	for _, idx := range idxs {
		if idx < 0 || idx >= s.n {
			return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
		}
	}
	s.mu.RLock()
	for i, idx := range idxs {
		copy(dst[i*BlockSize:(i+1)*BlockSize], s.data[idx*BlockSize:])
	}
	s.mu.RUnlock()
	return nil
}

// WriteBlock implements BlockStore.
func (s *MemStore) WriteBlock(idx int, src []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(src) > BlockSize {
		return fmt.Errorf("nvm: block write of %d bytes exceeds block size", len(src))
	}
	s.mu.Lock()
	off := idx * BlockSize
	copy(s.data[off:off+BlockSize], src)
	// Zero the remainder so partial writes behave like full-block writes.
	for i := off + len(src); i < off+BlockSize; i++ {
		s.data[i] = 0
	}
	s.mu.Unlock()
	return nil
}

// WriteBlockPatch implements PatchWriter: an in-place sub-block copy.
func (s *MemStore) WriteBlockPatch(idx, off int, p []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if off < 0 || len(p) == 0 || off+len(p) > BlockSize {
		return fmt.Errorf("nvm: patch [%d,%d) outside block", off, off+len(p))
	}
	s.mu.Lock()
	copy(s.data[idx*BlockSize+off:], p)
	s.mu.Unlock()
	return nil
}

// WriteBlocksUnjournaled implements RangeBulkWriter: one copy under one
// lock acquisition.
func (s *MemStore) WriteBlocksUnjournaled(base int, src []byte) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("nvm: bulk write of %d bytes is not block-aligned", len(src))
	}
	n := len(src) / BlockSize
	if base < 0 || base+n > s.n {
		return fmt.Errorf("nvm: bulk write [%d,%d) out of range [0,%d)", base, base+n, s.n)
	}
	s.mu.Lock()
	copy(s.data[base*BlockSize:], src)
	s.mu.Unlock()
	return nil
}

// BackendStats implements BackendStatser.
func (s *MemStore) BackendStats() BackendStats { return BackendStats{Backend: "mem"} }

// Close implements BlockStore.
func (s *MemStore) Close() error { return nil }
