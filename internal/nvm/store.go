package nvm

import (
	"fmt"
	"os"
	"sync"
)

// BlockStore is the backing storage of a simulated NVM device: a flat array
// of fixed-size blocks. Implementations must be safe for concurrent use.
type BlockStore interface {
	// NumBlocks returns the number of addressable blocks.
	NumBlocks() int
	// ReadBlock copies block idx into dst (which must be BlockSize bytes).
	ReadBlock(idx int, dst []byte) error
	// WriteBlock stores src (at most BlockSize bytes) as block idx.
	WriteBlock(idx int, src []byte) error
	// Close releases resources.
	Close() error
}

// MemStore is a RAM-backed block store. It is the default backing for the
// simulated device: the latency/bandwidth behaviour comes from the
// PerformanceModel, not from the backing medium.
type MemStore struct {
	mu   sync.RWMutex
	data []byte
	n    int
}

// NewMemStore creates a RAM-backed store with numBlocks blocks.
func NewMemStore(numBlocks int) *MemStore {
	if numBlocks <= 0 {
		panic(fmt.Sprintf("nvm: invalid block count %d", numBlocks))
	}
	return &MemStore{data: make([]byte, numBlocks*BlockSize), n: numBlocks}
}

// NumBlocks implements BlockStore.
func (s *MemStore) NumBlocks() int { return s.n }

// ReadBlock implements BlockStore.
func (s *MemStore) ReadBlock(idx int, dst []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(dst) < BlockSize {
		return fmt.Errorf("nvm: destination buffer too small: %d", len(dst))
	}
	s.mu.RLock()
	copy(dst[:BlockSize], s.data[idx*BlockSize:])
	s.mu.RUnlock()
	return nil
}

// WriteBlock implements BlockStore.
func (s *MemStore) WriteBlock(idx int, src []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(src) > BlockSize {
		return fmt.Errorf("nvm: block write of %d bytes exceeds block size", len(src))
	}
	s.mu.Lock()
	off := idx * BlockSize
	copy(s.data[off:off+BlockSize], src)
	// Zero the remainder so partial writes behave like full-block writes.
	for i := off + len(src); i < off+BlockSize; i++ {
		s.data[i] = 0
	}
	s.mu.Unlock()
	return nil
}

// Close implements BlockStore.
func (s *MemStore) Close() error { return nil }

// FileStore is a file-backed block store, useful when a table does not fit
// in RAM or when persistence across runs is wanted.
type FileStore struct {
	mu sync.Mutex
	f  *os.File
	n  int
}

// NewFileStore creates (or truncates) a file-backed store at path.
func NewFileStore(path string, numBlocks int) (*FileStore, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("nvm: invalid block count %d", numBlocks)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nvm: open file store: %w", err)
	}
	if err := f.Truncate(int64(numBlocks) * BlockSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: size file store: %w", err)
	}
	return &FileStore{f: f, n: numBlocks}, nil
}

// NumBlocks implements BlockStore.
func (s *FileStore) NumBlocks() int { return s.n }

// ReadBlock implements BlockStore.
func (s *FileStore) ReadBlock(idx int, dst []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(dst) < BlockSize {
		return fmt.Errorf("nvm: destination buffer too small: %d", len(dst))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.ReadAt(dst[:BlockSize], int64(idx)*BlockSize)
	return err
}

// WriteBlock implements BlockStore.
func (s *FileStore) WriteBlock(idx int, src []byte) error {
	if idx < 0 || idx >= s.n {
		return fmt.Errorf("nvm: block %d out of range [0,%d)", idx, s.n)
	}
	if len(src) > BlockSize {
		return fmt.Errorf("nvm: block write of %d bytes exceeds block size", len(src))
	}
	buf := make([]byte, BlockSize)
	copy(buf, src)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.WriteAt(buf, int64(idx)*BlockSize)
	return err
}

// Close implements BlockStore.
func (s *FileStore) Close() error { return s.f.Close() }
