package nvm

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestCrossBackendPropertyEquivalence drives one randomized op sequence
// (writes of random lengths, reads, and — for the file backends — periodic
// close/reopen cycles) against MemStore, a buffered FileStore and (where the
// filesystem supports O_DIRECT) a direct-I/O FileStore, and asserts all
// backends expose byte-identical block images throughout and at the end.
func TestCrossBackendPropertyEquivalence(t *testing.T) {
	const numBlocks = 24
	const ops = 600

	dir := t.TempDir()
	mem := NewMemStore(numBlocks)
	defer mem.Close()

	// Each file leg: path + options; reopened in place mid-sequence.
	type fileLeg struct {
		name  string
		path  string
		opts  FileStoreOptions
		store *FileStore
	}
	legs := []*fileLeg{
		{name: "file", path: filepath.Join(dir, "nvm.bnd"), opts: FileStoreOptions{RingBlocks: minRingBlocks}},
	}
	if DirectIOSupported(dir) {
		legs = append(legs, &fileLeg{
			name: "file-direct",
			path: filepath.Join(dir, "nvm-direct.bnd"),
			opts: FileStoreOptions{RingBlocks: minRingBlocks, Direct: true},
		})
	} else {
		t.Log("skipping file-direct leg: filesystem rejects O_DIRECT")
	}
	for _, leg := range legs {
		s, err := CreateFileStore(leg.path, numBlocks, leg.opts)
		if err != nil {
			t.Fatal(err)
		}
		leg.store = s
	}
	defer func() {
		for _, leg := range legs {
			leg.store.Close()
		}
	}()

	rng := rand.New(rand.NewSource(42))
	memBuf := make([]byte, BlockSize)
	fileBuf := make([]byte, BlockSize)

	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // write (sometimes short, exercising zero-fill)
			idx := rng.Intn(numBlocks)
			n := BlockSize
			if rng.Intn(3) == 0 {
				n = rng.Intn(BlockSize + 1)
			}
			src := make([]byte, n)
			rng.Read(src)
			if err := mem.WriteBlock(idx, src); err != nil {
				t.Fatal(err)
			}
			for _, leg := range legs {
				if err := leg.store.WriteBlock(idx, src); err != nil {
					t.Fatalf("%s: %v", leg.name, err)
				}
			}
		case 4, 5, 6, 7: // single read
			idx := rng.Intn(numBlocks)
			if err := mem.ReadBlock(idx, memBuf); err != nil {
				t.Fatal(err)
			}
			for _, leg := range legs {
				if err := leg.store.ReadBlock(idx, fileBuf); err != nil {
					t.Fatalf("%s: %v", leg.name, err)
				}
				if !bytes.Equal(memBuf, fileBuf) {
					t.Fatalf("op %d: block %d diverges between mem and %s", op, idx, leg.name)
				}
			}
		case 8: // batched read
			k := 1 + rng.Intn(5)
			idxs := make([]int, k)
			for i := range idxs {
				idxs[i] = rng.Intn(numBlocks)
			}
			m := make([]byte, k*BlockSize)
			f := make([]byte, k*BlockSize)
			if err := mem.ReadBlocks(idxs, m); err != nil {
				t.Fatal(err)
			}
			for _, leg := range legs {
				if err := leg.store.ReadBlocks(idxs, f); err != nil {
					t.Fatalf("%s: %v", leg.name, err)
				}
				if !bytes.Equal(m, f) {
					t.Fatalf("op %d: batched read diverges for blocks %v on %s", op, idxs, leg.name)
				}
			}
		case 9: // close + reopen the durable backends mid-sequence
			for _, leg := range legs {
				if err := leg.store.Close(); err != nil {
					t.Fatalf("%s: %v", leg.name, err)
				}
				s, err := OpenFileStore(leg.path, leg.opts)
				if err != nil {
					t.Fatalf("op %d: reopen %s: %v", op, leg.name, err)
				}
				leg.store = s
			}
		}
	}

	// Final sweep: every block byte-identical across all backends.
	for idx := 0; idx < numBlocks; idx++ {
		if err := mem.ReadBlock(idx, memBuf); err != nil {
			t.Fatal(err)
		}
		for _, leg := range legs {
			if err := leg.store.ReadBlock(idx, fileBuf); err != nil {
				t.Fatalf("%s: %v", leg.name, err)
			}
			if !bytes.Equal(memBuf, fileBuf) {
				t.Fatalf("final: block %d diverges between mem and %s", idx, leg.name)
			}
		}
	}
}
