package nvm

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestCrossBackendPropertyEquivalence drives one randomized op sequence
// (writes of random lengths, reads, and — for the file backend — periodic
// close/reopen cycles) against MemStore and FileStore and asserts the two
// backends expose byte-identical block images throughout and at the end.
func TestCrossBackendPropertyEquivalence(t *testing.T) {
	const numBlocks = 24
	const ops = 600

	path := filepath.Join(t.TempDir(), "nvm.bnd")
	mem := NewMemStore(numBlocks)
	defer mem.Close()
	file, err := CreateFileStore(path, numBlocks, FileStoreOptions{JournalSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { file.Close() }()

	rng := rand.New(rand.NewSource(42))
	memBuf := make([]byte, BlockSize)
	fileBuf := make([]byte, BlockSize)

	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // write (sometimes short, exercising zero-fill)
			idx := rng.Intn(numBlocks)
			n := BlockSize
			if rng.Intn(3) == 0 {
				n = rng.Intn(BlockSize + 1)
			}
			src := make([]byte, n)
			rng.Read(src)
			if err := mem.WriteBlock(idx, src); err != nil {
				t.Fatal(err)
			}
			if err := file.WriteBlock(idx, src); err != nil {
				t.Fatal(err)
			}
		case 4, 5, 6, 7: // single read
			idx := rng.Intn(numBlocks)
			if err := mem.ReadBlock(idx, memBuf); err != nil {
				t.Fatal(err)
			}
			if err := file.ReadBlock(idx, fileBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(memBuf, fileBuf) {
				t.Fatalf("op %d: block %d diverges between backends", op, idx)
			}
		case 8: // batched read
			k := 1 + rng.Intn(5)
			idxs := make([]int, k)
			for i := range idxs {
				idxs[i] = rng.Intn(numBlocks)
			}
			m := make([]byte, k*BlockSize)
			f := make([]byte, k*BlockSize)
			if err := mem.ReadBlocks(idxs, m); err != nil {
				t.Fatal(err)
			}
			if err := file.ReadBlocks(idxs, f); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(m, f) {
				t.Fatalf("op %d: batched read diverges for blocks %v", op, idxs)
			}
		case 9: // close + reopen the durable backend mid-sequence
			if err := file.Close(); err != nil {
				t.Fatal(err)
			}
			file, err = OpenFileStore(path, FileStoreOptions{})
			if err != nil {
				t.Fatalf("op %d: reopen: %v", op, err)
			}
		}
	}

	// Final sweep: every block byte-identical.
	for idx := 0; idx < numBlocks; idx++ {
		if err := mem.ReadBlock(idx, memBuf); err != nil {
			t.Fatal(err)
		}
		if err := file.ReadBlock(idx, fileBuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(memBuf, fileBuf) {
			t.Fatalf("final: block %d diverges between backends", idx)
		}
	}
}
