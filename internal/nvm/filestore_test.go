package nvm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func fillBlock(tag byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = tag ^ byte(i)
	}
	return b
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 8, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.WriteBlock(i, fillBlock(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumBlocks() != 8 {
		t.Fatalf("NumBlocks = %d after reopen", r.NumBlocks())
	}
	dst := make([]byte, BlockSize)
	for i := 0; i < 8; i++ {
		if err := r.ReadBlock(i, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, fillBlock(byte(i))) {
			t.Fatalf("block %d content lost across reopen", i)
		}
	}
}

func TestFileStoreOpenOrCreate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, created, err := OpenOrCreateFileStore(path, 4, FileStoreOptions{})
	if err != nil || !created {
		t.Fatalf("first open: created=%v err=%v", created, err)
	}
	if err := s.WriteBlock(1, fillBlock(9)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s, created, err = OpenOrCreateFileStore(path, 4, FileStoreOptions{})
	if err != nil || created {
		t.Fatalf("second open: created=%v err=%v", created, err)
	}
	s.Close()

	if _, _, err := OpenOrCreateFileStore(path, 16, FileStoreOptions{}); err == nil {
		t.Fatal("expected geometry mismatch error")
	}
}

// Torn in-place data write: the journal record is complete, so reopening
// must roll the write forward to the NEW content.
func TestFileStoreRecoveryReplaysTornDataWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 4, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	old := fillBlock(0xAA)
	if err := s.WriteBlock(2, old); err != nil {
		t.Fatal(err)
	}
	// A write is 2 pwrites: ring-journal append, in-place data. Fail on the
	// 2nd: the in-place image is torn but the journal record is valid.
	s.failAfterWrites(2)
	newData := fillBlock(0x55)
	if err := s.WriteBlock(2, newData); err == nil {
		t.Fatal("expected injected write fault")
	}
	s.f.Close() // simulate the crash: no journal cleanup, no sync

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.BackendStats().RecoveredRecords; got < 1 {
		t.Fatalf("expected at least one replayed journal record, got %d", got)
	}
	dst := make([]byte, BlockSize)
	if err := r.ReadBlock(2, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, newData) {
		t.Fatalf("torn in-place write not repaired from journal")
	}
}

// Torn journal append: the in-place write never started, so reopening must
// keep the OLD content intact (rollback). The torn record fails its payload
// CRC (or breaks the sequence chain), which is where the scan stops.
func TestFileStoreRecoveryRollsBackTornJournalWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 4, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	old := fillBlock(0xAA)
	if err := s.WriteBlock(2, old); err != nil {
		t.Fatal(err)
	}
	s.failAfterWrites(1) // tear the ring append itself
	if err := s.WriteBlock(2, fillBlock(0x55)); err == nil {
		t.Fatal("expected injected write fault")
	}
	s.f.Close()

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	if err := r.ReadBlock(2, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, old) {
		t.Fatal("torn journal append must leave the old block intact")
	}
	r.Close()
}

// Sequence-ordered replay: when an older completed write and a newer torn
// write of the same block are both still in the ring, recovery must end at
// the NEWER image — the older record replays first and is then overwritten.
func TestFileStoreRecoveryNeverRollsBackCompletedWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 4, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(1, fillBlock(0x11)); err != nil {
		t.Fatal(err)
	}
	// Second write to the same block: tear its in-place write (pwrite #2
	// from here; a journaled write is append, in-place). Both records are
	// still in the ring (no GC ran), so replay applies 0x11 then 0x22 —
	// never ending at the older image.
	s.failAfterWrites(2)
	if err := s.WriteBlock(1, fillBlock(0x22)); err == nil {
		t.Fatal("expected injected write fault")
	}
	s.f.Close() // crash

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	if err := r.ReadBlock(1, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, fillBlock(0x22)) {
		t.Fatalf("replay did not restore the newest write of block 1")
	}
	if got := r.BackendStats().RecoveredRecords; got != 2 {
		t.Fatalf("recovered %d records, want both live records", got)
	}
	if r.ring.nextSeq <= 2 {
		t.Fatalf("sequence counter must resume after replay, got %d", r.ring.nextSeq)
	}
	r.Close()
}

// A failed in-place write pins its journal record (the ring-journal
// analogue of the old slot quarantine): GC must not retire it and a clean
// Close must keep it alive, so the torn block is still repaired at the next
// open.
func TestFileStoreFailedWritePinsJournalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 8, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(2, fillBlock(0xAA)); err != nil {
		t.Fatal(err)
	}
	// Tear the in-place write of block 2's new image, then heal the fault
	// so later writes succeed.
	s.failAfterWrites(2)
	newData := fillBlock(0x55)
	if err := s.WriteBlock(2, newData); err == nil {
		t.Fatal("expected injected write fault")
	}
	s.faultArmed.Store(false)
	if got := s.BackendStats().FailedWriteRecords; got != 1 {
		t.Fatalf("FailedWriteRecords = %d, want 1", got)
	}

	// Later writes of other blocks must not disturb the pinned record.
	for _, b := range []int{0, 1, 3, 4} {
		if err := s.WriteBlock(b, fillBlock(byte(b))); err != nil {
			t.Fatal(err)
		}
	}
	// Clean Close must keep the pinned record (and, behind it in the FIFO,
	// everything newer) alive.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.BackendStats().RecoveredRecords; got < 1 {
		t.Fatalf("recovered %d records, want at least the pinned one", got)
	}
	dst := make([]byte, BlockSize)
	if err := r.ReadBlock(2, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, newData) {
		t.Fatal("torn block not repaired from the pinned journal record")
	}
	for _, b := range []int{0, 1, 3, 4} {
		if err := r.ReadBlock(b, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, fillBlock(byte(b))) {
			t.Fatalf("block %d content lost", b)
		}
	}
}

// A later successful write of a block must tombstone the failed (pinned)
// record targeting it — otherwise the record would pin the ring GC head
// forever — and recovery must end at the superseding bytes. Covers the
// journaled and the bulk (unjournaled) superseding write.
func TestFileStoreQuarantineReleasedBySupersedingWrite(t *testing.T) {
	for _, bulk := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "nvm.bnd")
		s, err := CreateFileStore(path, 8, FileStoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Fail an in-place write of block 2, pinning its record.
		s.failAfterWrites(2)
		if err := s.WriteBlock(2, fillBlock(0x55)); err == nil {
			t.Fatal("expected injected write fault")
		}
		s.faultArmed.Store(false)
		pinned := func() int {
			s.ring.mu.Lock()
			defer s.ring.mu.Unlock()
			return s.ring.nFailed
		}
		if got := pinned(); got != 1 {
			t.Fatalf("bulk=%v: %d pinned records, want 1", bulk, got)
		}

		// Supersede block 2 with new content via the chosen path.
		final := fillBlock(0x99)
		if bulk {
			err = s.WriteBlockUnjournaled(2, final)
		} else {
			err = s.WriteBlock(2, final)
		}
		if err != nil {
			t.Fatal(err)
		}
		if got := pinned(); got != 0 {
			t.Fatalf("bulk=%v: pinned record not released by superseding write", bulk)
		}
		// The ring is unpinned: GC can advance past the tombstone.
		if err := s.ring.gc(); err != nil {
			t.Fatal(err)
		}
		if got := s.BackendStats().JournalGCRuns; got == 0 {
			t.Fatalf("bulk=%v: GC did not advance past the tombstoned record", bulk)
		}
		if err := s.WriteBlock(0, fillBlock(1)); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteBlock(1, fillBlock(2)); err != nil {
			t.Fatal(err)
		}
		s.f.Close() // crash without clean Close

		r, err := OpenFileStore(path, FileStoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, BlockSize)
		if err := r.ReadBlock(2, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, final) {
			t.Fatalf("bulk=%v: stale quarantined record replayed over the superseding write", bulk)
		}
		r.Close()
	}
}

// The confirmed-corruption scenario from review: a journaled write followed
// by an unjournaled bulk rewrite of the same block, then a crash. The
// journaled write retired its record on completion, so recovery must NOT
// replay the stale pre-rewrite image over the bulk-written bytes.
func TestFileStoreBulkRewriteNotClobberedByStaleJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 4, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(2, fillBlock(0xAA)); err != nil { // journaled
		t.Fatal(err)
	}
	if err := s.WriteBlockUnjournaled(2, fillBlock(0xBB)); err != nil { // bulk rewrite
		t.Fatal(err)
	}
	s.f.Close() // crash without clean Close

	r, err := OpenFileStore(path, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dst := make([]byte, BlockSize)
	if err := r.ReadBlock(2, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, fillBlock(0xBB)) {
		t.Fatalf("stale journal record replayed over a newer bulk write")
	}
	if r.BackendStats().RecoveredRecords != 0 {
		t.Fatalf("recovered %d records, want 0", r.BackendStats().RecoveredRecords)
	}
}

func TestFileStoreRejectsCorruptSuperblock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 4, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	corrupt := func(off int64, b byte) {
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		buf[0] ^= b
		if _, err := f.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}

	// Flip a geometry byte: CRC must catch it.
	corrupt(16, 0xFF)
	if _, err := OpenFileStore(path, FileStoreOptions{}); !errors.Is(err, ErrBadSuperblock) {
		t.Fatalf("corrupt superblock: err = %v, want ErrBadSuperblock", err)
	}
	corrupt(16, 0xFF) // restore

	// Bad magic.
	corrupt(0, 0xFF)
	if _, err := OpenFileStore(path, FileStoreOptions{}); !errors.Is(err, ErrBadSuperblock) {
		t.Fatalf("bad magic: err = %v, want ErrBadSuperblock", err)
	}
	corrupt(0, 0xFF)

	// Unsupported version (with a recomputed, valid CRC).
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	sb := make([]byte, superblockBytes)
	if _, err := f.ReadAt(sb, 0); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(sb[8:], FormatVersion+1)
	binary.LittleEndian.PutUint32(sb[28:], crc32.Checksum(sb[:28], castagnoli))
	if _, err := f.WriteAt(sb, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, FileStoreOptions{}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("future version: err = %v, want ErrVersionMismatch", err)
	}

	// Restore the version, then truncate the data region away: the geometry
	// check must reject the short file.
	binary.LittleEndian.PutUint32(sb[8:], FormatVersion)
	binary.LittleEndian.PutUint32(sb[28:], crc32.Checksum(sb[:28], castagnoli))
	if _, err := f.WriteAt(sb, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.Truncate(path, BlockSize); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, FileStoreOptions{}); !errors.Is(err, ErrBadSuperblock) {
		t.Fatalf("truncated file: err = %v, want ErrBadSuperblock", err)
	}

	// A file too short to even hold a superblock.
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, FileStoreOptions{}); !errors.Is(err, ErrBadSuperblock) {
		t.Fatalf("tiny file: err = %v, want ErrBadSuperblock", err)
	}
}

func TestFileStoreSyncModes(t *testing.T) {
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatal("expected parse error")
	}
	for _, spelling := range []string{"none", "periodic", "always"} {
		mode, err := ParseSyncMode(spelling)
		if err != nil {
			t.Fatal(err)
		}
		if mode.String() != spelling {
			t.Fatalf("round trip %q -> %q", spelling, mode.String())
		}
		path := filepath.Join(t.TempDir(), "nvm.bnd")
		s, err := CreateFileStore(path, 2, FileStoreOptions{Sync: mode, FlushInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteBlock(0, fillBlock(1)); err != nil {
			t.Fatal(err)
		}
		if mode == SyncPeriodic {
			// The background flusher must run without explicit Flush calls.
			deadline := time.Now().Add(2 * time.Second)
			for s.BackendStats().Flushes == 0 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if s.BackendStats().Flushes == 0 {
				t.Fatal("periodic flusher never ran")
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
}

func TestFileStoreConcurrentReadWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	// A small ring forces wraps, pads and inline GC under concurrency.
	s, err := CreateFileStore(path, 32, FileStoreOptions{RingBlocks: minRingBlocks})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 32; i++ {
		if err := s.WriteBlock(i, fillBlock(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, BlockSize)
			for i := 0; i < 200; i++ {
				idx := rng.Intn(32)
				if rng.Intn(4) == 0 {
					if err := s.WriteBlock(idx, fillBlock(byte(idx))); err != nil {
						t.Error(err)
						return
					}
				} else {
					if err := s.ReadBlock(idx, buf); err != nil {
						t.Error(err)
						return
					}
					if !bytes.Equal(buf, fillBlock(byte(idx))) {
						t.Errorf("block %d torn under concurrency", idx)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if s.BackendStats().JournalWrites == 0 {
		t.Fatal("journal write counter not advancing")
	}
}

// Bulk (unjournaled) writes must land in the data region without consuming
// journal slots or writing journal records.
func TestFileStoreWriteBlockUnjournaled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	s, err := CreateFileStore(path, 4, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteBlockUnjournaled(1, fillBlock(0x77)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlockUnjournaled(9, fillBlock(1)); err == nil {
		t.Fatal("expected out-of-range error")
	}
	dst := make([]byte, BlockSize)
	if err := s.ReadBlock(1, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, fillBlock(0x77)) {
		t.Fatal("unjournaled write content mismatch")
	}
	if got := s.BackendStats().JournalWrites; got != 0 {
		t.Fatalf("unjournaled write produced %d journal records", got)
	}

	// Device-level: the bulk path falls back to WriteBlock on MemStore and
	// counts blocks written either way.
	d := NewDevice(DeviceConfig{Store: s, Seed: 1})
	if err := d.WriteBlockBulk(2, fillBlock(0x33)); err != nil {
		t.Fatal(err)
	}
	mem := NewDevice(DeviceConfig{NumBlocks: 4, Seed: 1})
	defer mem.Close()
	if err := mem.WriteBlockBulk(2, fillBlock(0x33)); err != nil {
		t.Fatal(err)
	}
	if d.Stats().BlocksWritten != 1 || mem.Stats().BlocksWritten != 1 {
		t.Fatalf("bulk writes not counted: file=%d mem=%d", d.Stats().BlocksWritten, mem.Stats().BlocksWritten)
	}
}

func TestDeviceReadBlocksAndFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvm.bnd")
	fs, err := CreateFileStore(path, 16, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDevice(DeviceConfig{Store: fs, Seed: 1})
	defer d.Close()
	for i := 0; i < 16; i++ {
		if err := d.WriteBlock(i, fillBlock(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	idxs := []int{3, 7, 11}
	dst := make([]byte, len(idxs)*BlockSize)
	lat, err := d.ReadBlocks(idxs, dst)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("batch latency %g", lat)
	}
	for i, idx := range idxs {
		if !bytes.Equal(dst[i*BlockSize:(i+1)*BlockSize], fillBlock(byte(idx))) {
			t.Fatalf("batch read block %d mismatch", idx)
		}
	}
	if _, err := d.ReadBlocks([]int{99}, make([]byte, BlockSize)); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Store.Backend != "file" {
		t.Fatalf("backend = %q", s.Store.Backend)
	}
	if s.Store.Flushes == 0 || s.Store.JournalWrites != 16 {
		t.Fatalf("backend stats %+v", s.Store)
	}
	if s.BlocksRead != int64(len(idxs)) {
		t.Fatalf("blocks read %d", s.BlocksRead)
	}
}
