package nvm

import (
	"bytes"
	"testing"
)

// TestBatchCounters pins the read-batch accounting: single reads count as
// batches of one, batched reads as one batch of N, and the average and
// high-water queue depth follow.
func TestBatchCounters(t *testing.T) {
	d := NewDevice(DeviceConfig{NumBlocks: 64, Seed: 1})
	defer d.Close()
	buf := make([]byte, BlockSize)
	for i := 0; i < 3; i++ {
		if _, err := d.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]byte, 5*BlockSize)
	if _, err := d.ReadBlocks([]int{1, 2, 3, 4, 5}, batch); err != nil {
		t.Fatal(err)
	}

	st := d.Stats()
	if st.BlocksRead != 8 || st.ReadBatches != 4 {
		t.Fatalf("blocksRead=%d readBatches=%d, want 8/4", st.BlocksRead, st.ReadBatches)
	}
	if st.AvgReadBatch != 2 {
		t.Fatalf("avgReadBatch=%v, want 2", st.AvgReadBatch)
	}
	if st.MaxQueueDepth < 5 {
		t.Fatalf("maxQueueDepth=%d, want >= 5 (batch of 5 outstanding)", st.MaxQueueDepth)
	}
	if st.ReadsSubmitted != 8 {
		t.Fatalf("readsSubmitted=%d, want 8 with no coalescing", st.ReadsSubmitted)
	}

	d.NoteCoalescedRead()
	d.NoteCoalescedRead()
	st = d.Stats()
	if st.CoalescedReads != 2 || st.ReadsSubmitted != 10 {
		t.Fatalf("coalesced=%d submitted=%d, want 2/10", st.CoalescedReads, st.ReadsSubmitted)
	}

	d.ResetStats()
	st = d.Stats()
	if st.ReadBatches != 0 || st.CoalescedReads != 0 || st.MaxQueueDepth != 0 || st.AvgReadBatch != 0 {
		t.Fatalf("counters survived reset: %+v", st)
	}
}

// TestReadBlocksAsync verifies the async submission API delivers the same
// bytes and accounting as the synchronous path.
func TestReadBlocksAsync(t *testing.T) {
	d := NewDevice(DeviceConfig{NumBlocks: 16, Seed: 1})
	defer d.Close()
	want := make([]byte, BlockSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := d.WriteBlock(3, want); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 2*BlockSize)
	res := <-d.ReadBlocksAsync([]int{3, 3}, dst)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.LatencyUS <= 0 {
		t.Fatalf("latency %v", res.LatencyUS)
	}
	if !bytes.Equal(dst[:BlockSize], want) || !bytes.Equal(dst[BlockSize:], want) {
		t.Fatal("async read returned wrong bytes")
	}
	if st := d.Stats(); st.BlocksRead != 2 || st.ReadBatches != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Errors propagate through the channel.
	if res := <-d.ReadBlocksAsync([]int{999}, dst); res.Err == nil {
		t.Fatal("out-of-range async read succeeded")
	}
}

// TestBatchBufPool covers the pooled batch buffers used by the scheduler.
func TestBatchBufPool(t *testing.T) {
	b := GetBatchBuf(3)
	if len(*b) != 3*BlockSize {
		t.Fatalf("len %d", len(*b))
	}
	PutBatchBuf(b)
	b = GetBatchBuf(12)
	if len(*b) != 12*BlockSize {
		t.Fatalf("len %d after regrow", len(*b))
	}
	PutBatchBuf(b)
}
