package bandana

import (
	"bandana/internal/alloc"
	"bandana/internal/cache"
	"bandana/internal/kmeans"
	"bandana/internal/layout"
	"bandana/internal/mrc"
	"bandana/internal/shp"
	"bandana/internal/sim"
)

// This file exposes the analysis and tuning toolkit that powers the store:
// physical placement (SHP, K-means), hit-rate curves, cache simulation and
// DRAM allocation. Store.Train drives all of it automatically; these entry
// points exist for capacity planning, offline studies and the examples/
// programs.

// Layout maps vectors to physical NVM blocks.
type Layout = layout.Layout

// DefaultBlockVectors is the number of 128 B vectors per 4 KB NVM block.
const DefaultBlockVectors = layout.DefaultBlockVectors

// IdentityLayout places vectors in ID order.
func IdentityLayout(numVectors, blockVectors int) *Layout {
	return layout.Identity(numVectors, blockVectors)
}

// LayoutFromOrder builds a layout from a placement permutation.
func LayoutFromOrder(order []uint32, blockVectors int) (*Layout, error) {
	return layout.FromOrder(order, blockVectors)
}

// SHPOptions configures PartitionSHP.
type SHPOptions = shp.Options

// SHPResult is the outcome of PartitionSHP.
type SHPResult = shp.Result

// PartitionSHP partitions a table's vectors into NVM blocks by recursively
// bisecting the lookup hypergraph (Social Hash Partitioner), minimising the
// average number of blocks each query touches.
func PartitionSHP(numVectors int, queries []Query, opts SHPOptions) (*SHPResult, error) {
	qs := make([][]uint32, len(queries))
	for i, q := range queries {
		qs[i] = q
	}
	return shp.Partition(numVectors, qs, opts)
}

// KMeansOptions configures ClusterTable.
type KMeansOptions = kmeans.Options

// KMeansResult is the outcome of ClusterTable.
type KMeansResult = kmeans.Result

// ClusterTable clusters a table's embedding vectors by Euclidean distance
// (the semantic-partitioning baseline of the paper).
func ClusterTable(t *Table, opts KMeansOptions) (*KMeansResult, error) {
	return kmeans.Cluster(kmeans.TableDataset{Table: t}, opts)
}

// OrderByCluster turns a cluster assignment into a placement order (vectors
// grouped by cluster).
func OrderByCluster(assignments []int32) []uint32 { return kmeans.OrderByCluster(assignments) }

// HitRateCurve is the hit rate of an LRU cache as a function of its size.
type HitRateCurve = mrc.HRC

// HitRateCurveOf computes a table's hit-rate curve from a trace using exact
// Mattson stack distances (samplingRate 1) or SHARDS-style spatial sampling
// (samplingRate < 1).
func HitRateCurveOf(tr *Trace, samplingRate float64) *HitRateCurve {
	var flat []uint32
	for _, q := range tr.Queries {
		flat = append(flat, q...)
	}
	return mrc.SampledStackDistances(flat, samplingRate).HitRateCurve()
}

// TableDemand describes one table's appetite for DRAM when splitting a
// budget across tables.
type TableDemand = alloc.TableDemand

// AllocateOptions configures AllocateDRAM.
type AllocateOptions = alloc.Options

// AllocateResult is the outcome of AllocateDRAM.
type AllocateResult = alloc.Result

// AllocateDRAM splits a DRAM budget (in vectors) across tables by greedy
// marginal utility over their hit-rate curves.
func AllocateDRAM(demands []TableDemand, opts AllocateOptions) (*AllocateResult, error) {
	return alloc.Allocate(demands, opts)
}

// EvenSplitDRAM divides the budget equally across tables (baseline for
// capacity planning comparisons).
func EvenSplitDRAM(demands []TableDemand, totalVectors int) *AllocateResult {
	return alloc.EvenSplit(demands, totalVectors)
}

// AdmissionPolicy decides whether (and where in the eviction queue) a
// prefetched vector is cached. The same implementations drive both the
// trace simulator (SimulateCache) and the live serving path: install one on
// a running store with Store.SetAdmissionPolicy. Implementations must be
// safe for concurrent use.
type AdmissionPolicy = cache.AdmissionPolicy

// NewNoPrefetch returns the baseline policy that never admits prefetched
// vectors.
func NewNoPrefetch() AdmissionPolicy { return cache.NoPrefetch{} }

// NewAlwaysAdmit returns a policy that admits every prefetched vector at the
// given eviction-queue position (0 = most-recently-used end).
func NewAlwaysAdmit(position float64) AdmissionPolicy { return cache.AlwaysAdmit{Position: position} }

// NewShadowAdmission returns a policy that admits a prefetched vector only
// if it appears in a keys-only shadow cache of the true access stream.
func NewShadowAdmission(shadowVectors int, position float64) AdmissionPolicy {
	return cache.NewShadowAdmit(shadowVectors, position)
}

// NewThresholdAdmission returns the policy Bandana deploys: admit a
// prefetched vector only if its training-time access count exceeds the
// threshold. Store.Train tunes and installs it automatically.
func NewThresholdAdmission(counts []uint32, threshold uint32) AdmissionPolicy {
	return cache.ThresholdAdmit{Counts: counts, Threshold: threshold}
}

// NewShadowPositionAdmission returns a policy that admits every prefetched
// vector, placing shadow-cache hits at the MRU end and shadow misses at
// altPosition (Figure 11c of the paper).
func NewShadowPositionAdmission(shadowVectors int, altPosition float64) AdmissionPolicy {
	return cache.NewShadowPosition(shadowVectors, altPosition)
}

// SimulationConfig configures SimulateCache.
type SimulationConfig = sim.Config

// SimulationResult is the outcome of one cache simulation.
type SimulationResult = sim.Result

// SimulationComparison bundles a policy simulation with its no-prefetch
// baseline.
type SimulationComparison = sim.Comparison

// SimulateCache replays a trace against a layout, cache size and admission
// policy, counting NVM block reads.
func SimulateCache(tr *Trace, cfg SimulationConfig) SimulationResult { return sim.Replay(tr, cfg) }

// CompareToBaseline runs both the configured policy and the no-prefetch
// baseline and reports the effective bandwidth increase.
func CompareToBaseline(tr *Trace, cfg SimulationConfig) SimulationComparison {
	return sim.Compare(tr, cfg)
}

// FanoutGain measures the effective bandwidth increase of a physical layout
// under the paper's unlimited-cache (per-query fanout) model.
func FanoutGain(tr *Trace, l *Layout) float64 { return sim.FanoutGain(tr, l) }
