package bandana_test

import (
	"testing"

	"bandana"
)

// TestPublicAPIEndToEnd exercises the exported surface the way a downstream
// application would: generate tables + traces, open a store, train it, look
// up embeddings and read stats.
func TestPublicAPIEndToEnd(t *testing.T) {
	profiles := bandana.DefaultProfiles(0.0005)[:2] // two small tables
	for i := range profiles {
		profiles[i].AvgLookups = 16
	}
	workload := bandana.GenerateWorkload(profiles, 400)

	tables := make([]*bandana.Table, len(profiles))
	for i, p := range profiles {
		g := bandana.GenerateTable(p.Name, bandana.TableGenerateOptions{
			NumVectors:  p.NumVectors,
			Dim:         64,
			NumClusters: p.NumVectors / 64,
			Seed:        int64(i),
			Assignments: workload.Communities[i],
		})
		tables[i] = g.Table
	}

	store, err := bandana.Open(bandana.Config{Tables: tables, DRAMBudgetVectors: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if store.NumTables() != 2 {
		t.Fatalf("NumTables = %d", store.NumTables())
	}

	trains := make([]*bandana.Trace, len(workload.Traces))
	evals := make([]*bandana.Trace, len(workload.Traces))
	for i, tr := range workload.Traces {
		trains[i], evals[i] = tr.Split(0.5)
	}
	report, err := store.Train(trains, bandana.TrainOptions{SHPIterations: 4, MiniCacheSampling: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Tables) != 2 {
		t.Fatalf("train report covers %d tables", len(report.Tables))
	}

	// Serve the evaluation traces.
	for ti, tr := range evals {
		for _, q := range tr.Queries {
			if _, err := store.LookupBatch(ti, q); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := store.Stats()
	for _, st := range stats {
		if st.Lookups == 0 {
			t.Fatalf("table %s served no lookups", st.Name)
		}
		if !st.Prefetching {
			t.Fatalf("table %s should have prefetching enabled after training", st.Name)
		}
	}
	if store.DeviceStats().BlocksRead == 0 {
		t.Fatal("no NVM reads recorded")
	}

	// Single lookup matches the source table.
	got, err := store.LookupByName(tables[0].Name, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tables[0].Vector(3)
	for d := range want {
		if got[d] != want[d] {
			t.Fatalf("lookup mismatch at element %d", d)
		}
	}
}

// TestUnifiedAdmissionPolicies verifies that the policy implementations the
// simulator evaluates can be installed directly on a live store: the same
// shadow-cache policy object serves real lookups, and clearing it disables
// prefetching.
func TestUnifiedAdmissionPolicies(t *testing.T) {
	p := bandana.DefaultProfiles(0.0005)[0]
	p.AvgLookups = 16
	workload := bandana.GenerateWorkload([]bandana.Profile{p}, 300)
	g := bandana.GenerateTable(p.Name, bandana.TableGenerateOptions{
		NumVectors:  p.NumVectors,
		Dim:         32,
		NumClusters: p.NumVectors / 64,
		Seed:        1,
		Assignments: workload.Communities[0],
	})
	store, err := bandana.Open(bandana.Config{
		Tables:            []*bandana.Table{g.Table},
		DRAMBudgetVectors: 300,
		Seed:              1,
		CacheShards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Install the shadow-admission policy of Figure 11b — one of the
	// simulator's policies — on the live serving path.
	if err := store.SetAdmissionPolicy(0, bandana.NewShadowAdmission(400, 0.5)); err != nil {
		t.Fatal(err)
	}
	for _, q := range workload.Traces[0].Queries {
		if _, err := store.LookupBatch(0, q); err != nil {
			t.Fatal(err)
		}
	}
	st := store.Stats()[0]
	if !st.Prefetching || st.Policy != "shadow-admit" {
		t.Fatalf("expected shadow-admit policy to be active, got %+v", st)
	}
	if st.PrefetchAdds == 0 {
		t.Fatal("shadow policy admitted no prefetches over the whole trace")
	}
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}

	if err := store.SetAdmissionPolicy(0, nil); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats()[0]; st.Prefetching {
		t.Fatal("nil policy should disable prefetching")
	}
}

func TestPublicConstants(t *testing.T) {
	if bandana.BlockSize != 4096 {
		t.Fatalf("BlockSize = %d", bandana.BlockSize)
	}
	if bandana.Version == "" {
		t.Fatal("version must be set")
	}
	m := bandana.NewPerformanceModel(nil)
	if m.MaxBandwidthGBs() <= 0 {
		t.Fatal("performance model broken")
	}
	d := bandana.NewDevice(bandana.DeviceConfig{NumBlocks: 4})
	defer d.Close()
	if d.NumBlocks() != 4 {
		t.Fatal("device creation broken")
	}
}
